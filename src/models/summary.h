/**
 * @file
 * Model summaries: per-layer and whole-model parameter and forward-FLOP
 * accounting, used by examples and to sanity-check the zoo against the
 * well-known published sizes (e.g. VGG16 ≈ 138 M parameters).
 */

#ifndef ACCPAR_MODELS_SUMMARY_H
#define ACCPAR_MODELS_SUMMARY_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/units.h"

namespace accpar::models {

/** One weighted layer's contribution to the model summary. */
struct LayerSummary
{
    graph::LayerId id = graph::kInvalidLayer;
    std::string name;
    graph::LayerKind kind = graph::LayerKind::Input;
    graph::TensorShape inputShape;
    graph::TensorShape outputShape;
    std::int64_t weightCount = 0;
    /**
     * Forward-phase FLOPs at the model's batch size, using the paper's
     * convention A(out) * (2K - 1) where K is the reduction length
     * (Table 6 and §4.3).
     */
    util::Flops forwardFlops = 0.0;
};

/** Whole-model summary. */
struct ModelSummary
{
    std::string modelName;
    std::vector<LayerSummary> layers; ///< weighted layers only
    std::int64_t totalWeightCount = 0;
    util::Flops totalForwardFlops = 0.0;
};

/** Builds the summary for a validated @p graph. */
ModelSummary summarizeModel(const graph::Graph &graph);

/** Renders the summary as an ASCII table. */
std::string formatSummary(const ModelSummary &summary);

} // namespace accpar::models

#endif // ACCPAR_MODELS_SUMMARY_H
