#include "models/catalog.h"

#include <algorithm>

#include "models/import.h"
#include "models/transformer.h"
#include "models/zoo.h"
#include "util/error.h"
#include "util/string_util.h"

namespace accpar::models {

ModelParams
ModelParams::fromKeyValues(const std::vector<std::string> &pairs)
{
    ModelParams params;
    for (const std::string &pair : pairs) {
        const std::size_t eq = pair.find('=');
        ACCPAR_REQUIRE(eq != std::string::npos && eq > 0,
                       "model parameter '"
                           << pair << "' is not of the form key=value");
        const std::string key = util::trim(pair.substr(0, eq));
        ACCPAR_REQUIRE(!params.has(key),
                       "model parameter '" << key
                                           << "' given more than once");
        params.set(key, util::trim(pair.substr(eq + 1)));
    }
    return params;
}

void
ModelParams::set(const std::string &key, std::string value)
{
    _values[key] = std::move(value);
}

bool
ModelParams::has(const std::string &key) const
{
    return _values.count(key) > 0;
}

std::optional<std::string>
ModelParams::get(const std::string &key) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return std::nullopt;
    return it->second;
}

std::int64_t
ModelParams::getIntOr(const std::string &key, std::int64_t fallback) const
{
    const auto value = get(key);
    if (!value)
        return fallback;
    try {
        std::size_t used = 0;
        const std::int64_t out = std::stoll(*value, &used);
        ACCPAR_REQUIRE(used == value->size(), "trailing characters");
        return out;
    } catch (const std::exception &) {
        throw util::ConfigError("model parameter " + key +
                                " expects an integer, got '" + *value +
                                "'");
    }
}

std::string
ModelParams::toString() const
{
    std::string out;
    for (const auto &[key, value] : _values) {
        if (!out.empty())
            out += ',';
        out += key + '=' + value;
    }
    return out;
}

void
ModelCatalog::add(ModelEntry entry)
{
    ACCPAR_REQUIRE(!entry.name.empty(), "catalog entry needs a name");
    ACCPAR_REQUIRE(!_index.count(entry.name),
                   "model '" << entry.name
                             << "' is already registered");
    ACCPAR_REQUIRE(entry.build != nullptr,
                   "catalog entry " << entry.name << " needs a builder");
    _index[entry.name] = _entries.size();
    _entries.push_back(std::move(entry));
}

void
ModelCatalog::registerImportFile(const std::string &name,
                                 const std::string &path)
{
    ModelEntry entry;
    entry.name = name;
    entry.family = "imported";
    entry.description = "imported from " + path;
    entry.params = {};
    entry.build = [path](const ModelParams &) {
        return importModel(path);
    };
    add(std::move(entry));
}

bool
ModelCatalog::contains(const std::string &name) const
{
    return _index.count(util::toLower(util::trim(name))) > 0;
}

const ModelEntry &
ModelCatalog::entry(const std::string &name) const
{
    const std::string key = util::toLower(util::trim(name));
    auto it = _index.find(key);
    if (it == _index.end()) {
        std::string known;
        for (const ModelEntry &e : _entries) {
            if (!known.empty())
                known += ", ";
            known += e.name;
        }
        throw util::ConfigError("unknown model name: " + name +
                                " (catalog: " + known + ")");
    }
    return _entries[it->second];
}

graph::Graph
ModelCatalog::build(const std::string &name,
                    const ModelParams &params) const
{
    const ModelEntry &e = entry(name);
    for (const auto &[key, value] : params.values()) {
        ACCPAR_REQUIRE(
            std::find(e.params.begin(), e.params.end(), key) !=
                e.params.end(),
            "model " << e.name << " does not take parameter '" << key
                     << "'"
                     << (e.params.empty()
                             ? std::string(" (it takes none)")
                             : " (known: " +
                                   util::join(e.params, ", ") + ")"));
    }
    return e.build(params);
}

std::vector<std::string>
ModelCatalog::names() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const ModelEntry &e : _entries)
        out.push_back(e.name);
    return out;
}

namespace {

std::int64_t
batchOf(const ModelParams &params, std::int64_t fallback)
{
    return params.getIntOr("batch", fallback);
}

TransformerConfig
transformerConfig(const ModelParams &params, TransformerConfig cfg)
{
    cfg.batch = params.getIntOr("batch", cfg.batch);
    cfg.seq = params.getIntOr("seq", cfg.seq);
    cfg.hidden = params.getIntOr("hidden", cfg.hidden);
    cfg.depth = params.getIntOr("depth", cfg.depth);
    cfg.heads = params.getIntOr("heads", cfg.heads);
    cfg.mlpRatio = params.getIntOr("mlp-ratio", cfg.mlpRatio);
    cfg.vocab = params.getIntOr("vocab", cfg.vocab);
    return cfg;
}

const std::vector<std::string> kTransformerParams = {
    "batch", "seq", "hidden", "depth", "heads", "mlp-ratio", "vocab"};

void
addBuiltins(ModelCatalog &cat)
{
    const auto cnn = [&](const std::string &name,
                         const std::string &description,
                         graph::Graph (*build)(std::int64_t)) {
        cat.add({name, "cnn", description, {"batch"},
                 [build](const ModelParams &p) {
                     return build(batchOf(p, 512));
                 }});
    };
    cnn("lenet", "LeNet-5 on MNIST shapes (paper eval)", &buildLenet);
    cnn("alexnet", "AlexNet, single tower (paper eval)", &buildAlexnet);
    for (int depth : {11, 13, 16, 19}) {
        cat.add({"vgg" + std::to_string(depth), "cnn",
                 "VGG-" + std::to_string(depth) +
                     " on ImageNet shapes (paper eval)",
                 {"batch"},
                 [depth](const ModelParams &p) {
                     return buildVgg(depth, batchOf(p, 512));
                 }});
    }
    for (int depth : {18, 34, 50}) {
        cat.add({"resnet" + std::to_string(depth), "cnn",
                 "ResNet-" + std::to_string(depth) +
                     " with residual fork/join blocks (paper eval)",
                 {"batch"},
                 [depth](const ModelParams &p) {
                     return buildResnet(depth, batchOf(p, 512));
                 }});
    }
    cnn("googlenet", "GoogLeNet v1: four-way Inception concats",
        &buildGooglenet);
    cat.add({"mlp", "mlp",
             "plain MLP; widths=comma-separated feature sizes",
             {"batch", "widths"},
             [](const ModelParams &p) {
                 std::vector<std::int64_t> widths;
                 const std::string spec =
                     p.get("widths").value_or("784,4096,4096,10");
                 for (const std::string &tok :
                      util::split(spec, ',')) {
                     try {
                         widths.push_back(std::stoll(tok));
                     } catch (const std::exception &) {
                         throw util::ConfigError(
                             "mlp widths expects integers, got '" +
                             spec + "'");
                     }
                 }
                 return buildMlp(batchOf(p, 512), widths);
             }});

    cat.add({"bert-base", "transformer",
             "BERT-base encoder: depth 12, hidden 768, 12 heads",
             kTransformerParams, [](const ModelParams &p) {
                 TransformerConfig cfg;
                 return buildTransformer(
                     "bert-base", transformerConfig(p, cfg));
             }});
    cat.add({"bert-large", "transformer",
             "BERT-large encoder: depth 24, hidden 1024, 16 heads",
             kTransformerParams, [](const ModelParams &p) {
                 TransformerConfig cfg;
                 cfg.depth = 24;
                 cfg.hidden = 1024;
                 cfg.heads = 16;
                 return buildTransformer(
                     "bert-large", transformerConfig(p, cfg));
             }});
    cat.add({"gpt-decoder", "transformer",
             "GPT-style decoder: depth 12, hidden 768, LM head",
             kTransformerParams, [](const ModelParams &p) {
                 TransformerConfig cfg;
                 cfg.vocab = 50257;
                 return buildTransformer(
                     "gpt-decoder", transformerConfig(p, cfg));
             }});
}

} // namespace

ModelCatalog &
catalog()
{
    static ModelCatalog instance = [] {
        ModelCatalog cat;
        addBuiltins(cat);
        return cat;
    }();
    return instance;
}

} // namespace accpar::models
