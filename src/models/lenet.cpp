#include "models/zoo.h"

#include "util/error.h"

namespace accpar::models {

using graph::ConvAttrs;
using graph::Graph;
using graph::LayerId;
using graph::PoolAttrs;
using graph::TensorShape;

Graph
buildLenet(std::int64_t batch)
{
    ACCPAR_REQUIRE(batch >= 1, "batch must be positive");
    Graph g("lenet");
    LayerId x = g.addInput("data", TensorShape(batch, 1, 28, 28));

    x = g.addConv("cv1", x, ConvAttrs{6, 5, 5, 1, 1, 2, 2});
    x = g.addRelu("cv1_relu", x);
    x = g.addMaxPool("pool1", x, PoolAttrs{2, 2, 2, 2, 0, 0});

    x = g.addConv("cv2", x, ConvAttrs{16, 5, 5, 1, 1, 0, 0});
    x = g.addRelu("cv2_relu", x);
    x = g.addMaxPool("pool2", x, PoolAttrs{2, 2, 2, 2, 0, 0});

    x = g.addFlatten("flatten", x);
    x = g.addFullyConnected("fc1", x, 120);
    x = g.addRelu("fc1_relu", x);
    x = g.addFullyConnected("fc2", x, 84);
    x = g.addRelu("fc2_relu", x);
    x = g.addFullyConnected("fc3", x, 10);
    g.addSoftmax("prob", x);

    g.validate();
    return g;
}

} // namespace accpar::models
