#include "models/summary.h"

#include <sstream>

#include "util/string_util.h"
#include "util/table.h"

namespace accpar::models {

namespace {

/** Reduction length K of a weighted layer's forward multiplication. */
std::int64_t
reductionLength(const graph::Graph &g, graph::LayerId id)
{
    const graph::Layer &l = g.layer(id);
    const graph::TensorShape &in = g.inputShape(id);
    if (l.kind == graph::LayerKind::Conv) {
        const graph::ConvAttrs &a = l.conv();
        return in.c * a.kernelH * a.kernelW;
    }
    return in.c;
}

} // namespace

ModelSummary
summarizeModel(const graph::Graph &graph)
{
    ModelSummary s;
    s.modelName = graph.name();
    for (graph::LayerId id : graph.weightedLayers()) {
        const graph::Layer &l = graph.layer(id);
        LayerSummary row;
        row.id = id;
        row.name = l.name;
        row.kind = l.kind;
        row.inputShape = graph.inputShape(id);
        row.outputShape = l.outputShape;
        row.weightCount = graph.weightCount(id);
        const std::int64_t k = reductionLength(graph, id);
        row.forwardFlops =
            static_cast<util::Flops>(l.outputShape.elementCount()) *
            static_cast<util::Flops>(2 * k - 1);
        s.totalWeightCount += row.weightCount;
        s.totalForwardFlops += row.forwardFlops;
        s.layers.push_back(std::move(row));
    }
    return s;
}

std::string
formatSummary(const ModelSummary &summary)
{
    util::Table table({"layer", "kind", "input", "output", "weights",
                       "fwd FLOPs"});
    for (const LayerSummary &row : summary.layers) {
        table.addRow({row.name, graph::layerKindName(row.kind),
                      row.inputShape.toString(),
                      row.outputShape.toString(),
                      std::to_string(row.weightCount),
                      util::humanFlops(row.forwardFlops)});
    }
    std::ostringstream os;
    os << "model: " << summary.modelName << '\n';
    table.print(os);
    os << "total weights: " << summary.totalWeightCount << " ("
       << util::humanBytes(static_cast<double>(summary.totalWeightCount) *
                           2)
       << " at bf16)\n";
    os << "total forward FLOPs: "
       << util::humanFlops(summary.totalForwardFlops) << '\n';
    return os.str();
}

} // namespace accpar::models
