/**
 * @file
 * Model descriptions from JSON — so the command-line tool can plan
 * user-defined networks without recompiling.
 *
 * Document format:
 * @code{.json}
 * {
 *   "name": "my-net",
 *   "input": {"batch": 256, "channels": 3, "height": 32, "width": 32},
 *   "layers": [
 *     {"op": "conv", "name": "cv1", "out": 32, "kernel": 3,
 *      "stride": 1, "pad": 1},
 *     {"op": "relu"},
 *     {"op": "maxpool", "kernel": 2, "stride": 2},
 *     {"op": "flatten"},
 *     {"op": "fc", "name": "fc1", "out": 10}
 *   ]
 * }
 * @endcode
 *
 * Layers chain implicitly; "input" names a layer whose *output* feeds
 * this layer instead of the previous one, and "add"/"concat" take an
 * "inputs" list of layer names, enabling residual and Inception
 * topologies. Unnamed layers get generated names.
 */

#ifndef ACCPAR_MODELS_MODEL_IO_H
#define ACCPAR_MODELS_MODEL_IO_H

#include <optional>
#include <string>

#include "analysis/diagnostic.h"
#include "graph/graph.h"
#include "util/json.h"

namespace accpar::models {

/** Builds a graph from a parsed model document. */
graph::Graph modelFromJson(const util::Json &doc);

/** Reads and builds a model from a JSON file. */
graph::Graph loadModelFile(const std::string &path);

/**
 * Diagnostic-collecting variant: malformed documents are reported into
 * @p sink (codes AMIO01..AMIO06, see DESIGN.md) and std::nullopt is
 * returned instead of throwing. A successfully built graph is also run
 * through the graph linter (AG001..AG008), so the result is known to
 * satisfy every structural invariant the solvers assume.
 */
std::optional<graph::Graph> modelFromJson(const util::Json &doc,
                                          analysis::DiagnosticSink &sink);

/** Diagnostic-collecting variant of loadModelFile (AMIO01 on
 *  unreadable or unparseable files). */
std::optional<graph::Graph>
loadModelFile(const std::string &path, analysis::DiagnosticSink &sink);

} // namespace accpar::models

#endif // ACCPAR_MODELS_MODEL_IO_H
