#include "models/transformer.h"

#include <string>
#include <vector>

#include "util/error.h"

namespace accpar::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

namespace {

/** One encoder block: multi-head attention + MLP, both residual. */
LayerId
transformerBlock(Graph &g, const std::string &name, LayerId x,
                 const TransformerConfig &cfg)
{
    // Attention. The QKV projection forks into per-head branches that
    // rejoin at a channel Concat, all nested inside the residual —
    // inner join (Concat) and outer join (Add) are distinct nodes, so
    // the block keeps the cleanly nested fork/join structure of §5.2.
    const std::int64_t head_dim = cfg.hidden / cfg.heads;
    LayerId qkv = g.addFullyConnected(name + "_qkv", x, 3 * cfg.hidden);
    std::vector<LayerId> heads;
    heads.reserve(cfg.heads);
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
        const std::string head = name + "_h" + std::to_string(h);
        LayerId attn = g.addSoftmax(head + "_attn", qkv);
        heads.push_back(
            g.addFullyConnected(head + "_mix", attn, head_dim));
    }
    LayerId cat = g.addConcat(name + "_heads", heads);
    LayerId proj = g.addFullyConnected(name + "_proj", cat, cfg.hidden);
    proj = g.addDropout(name + "_proj_drop", proj);
    LayerId attn_out = g.addAdd(name + "_attn_res", proj, x);

    // MLP with the second residual.
    LayerId mlp = g.addFullyConnected(name + "_fc1", attn_out,
                                      cfg.mlpRatio * cfg.hidden);
    mlp = g.addRelu(name + "_fc1_act", mlp);
    mlp = g.addFullyConnected(name + "_fc2", mlp, cfg.hidden);
    mlp = g.addDropout(name + "_fc2_drop", mlp);
    return g.addAdd(name + "_mlp_res", mlp, attn_out);
}

} // namespace

Graph
buildTransformer(const std::string &name, const TransformerConfig &cfg)
{
    ACCPAR_REQUIRE(cfg.batch >= 1, "batch must be positive");
    ACCPAR_REQUIRE(cfg.seq >= 1, "seq must be positive");
    ACCPAR_REQUIRE(cfg.depth >= 1, "depth must be positive");
    ACCPAR_REQUIRE(cfg.heads >= 1, "heads must be positive");
    ACCPAR_REQUIRE(cfg.mlpRatio >= 1, "mlp ratio must be positive");
    ACCPAR_REQUIRE(cfg.hidden % cfg.heads == 0,
                   "hidden (" << cfg.hidden
                              << ") must be divisible by heads ("
                              << cfg.heads << ")");
    Graph g(name);
    // Tokens on the batch axis: (batch * seq, hidden, 1, 1).
    LayerId x = g.addInput(
        "tokens", TensorShape(cfg.batch * cfg.seq, cfg.hidden, 1, 1));
    // Embedding lookup modeled as an input projection.
    x = g.addFullyConnected("embed", x, cfg.hidden);
    for (std::int64_t d = 0; d < cfg.depth; ++d)
        x = transformerBlock(g, "blk" + std::to_string(d), x, cfg);
    if (cfg.vocab > 0) {
        x = g.addFullyConnected("lm_head", x, cfg.vocab);
        x = g.addSoftmax("lm_softmax", x);
    } else {
        x = g.addFullyConnected("pooler", x, cfg.hidden);
        x = g.addFullyConnected("classifier", x, 2);
        x = g.addSoftmax("cls_softmax", x);
    }
    g.validate();
    return g;
}

Graph
buildBertBase(std::int64_t batch)
{
    TransformerConfig cfg;
    cfg.batch = batch;
    return buildTransformer("bert-base", cfg);
}

Graph
buildBertLarge(std::int64_t batch)
{
    TransformerConfig cfg;
    cfg.batch = batch;
    cfg.depth = 24;
    cfg.hidden = 1024;
    cfg.heads = 16;
    return buildTransformer("bert-large", cfg);
}

Graph
buildGptDecoder(std::int64_t batch)
{
    TransformerConfig cfg;
    cfg.batch = batch;
    cfg.vocab = 50257;
    return buildTransformer("gpt-decoder", cfg);
}

} // namespace accpar::models
