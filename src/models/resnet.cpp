#include "models/zoo.h"

#include <array>
#include <string>

#include "util/error.h"

namespace accpar::models {

using graph::ConvAttrs;
using graph::Graph;
using graph::LayerId;
using graph::PoolAttrs;
using graph::TensorShape;

namespace {

/**
 * Basic residual block (ResNet-18/34): two 3x3 convolutions plus an
 * identity (or 1x1 projection) shortcut joined by element-wise addition.
 * This is exactly the multi-path pattern of paper §5.2 / Figure 4:
 * P2 = two weighted layers, P1 = zero or one weighted layer.
 */
LayerId
basicBlock(Graph &g, const std::string &name, LayerId input,
           std::int64_t channels, std::int64_t stride, bool project)
{
    LayerId x = g.addConv(name + "_cv1", input,
                          ConvAttrs{channels, 3, 3, stride, stride, 1, 1});
    x = g.addBatchNorm(name + "_bn1", x);
    x = g.addRelu(name + "_relu1", x);
    x = g.addConv(name + "_cv2", x, ConvAttrs{channels, 3, 3, 1, 1, 1, 1});
    x = g.addBatchNorm(name + "_bn2", x);

    LayerId shortcut = input;
    if (project) {
        shortcut = g.addConv(name + "_proj", input,
                             ConvAttrs{channels, 1, 1, stride, stride, 0,
                                       0});
        shortcut = g.addBatchNorm(name + "_proj_bn", shortcut);
    }
    LayerId sum = g.addAdd(name + "_add", x, shortcut);
    return g.addRelu(name + "_relu2", sum);
}

/**
 * Bottleneck residual block (ResNet-50): 1x1 reduce, 3x3, 1x1 expand
 * (4x) plus an identity or projection shortcut.
 */
LayerId
bottleneckBlock(Graph &g, const std::string &name, LayerId input,
                std::int64_t mid_channels, std::int64_t stride,
                bool project)
{
    const std::int64_t out_channels = mid_channels * 4;

    LayerId x = g.addConv(name + "_cv1", input,
                          ConvAttrs{mid_channels, 1, 1, 1, 1, 0, 0});
    x = g.addBatchNorm(name + "_bn1", x);
    x = g.addRelu(name + "_relu1", x);
    x = g.addConv(name + "_cv2", x,
                  ConvAttrs{mid_channels, 3, 3, stride, stride, 1, 1});
    x = g.addBatchNorm(name + "_bn2", x);
    x = g.addRelu(name + "_relu2", x);
    x = g.addConv(name + "_cv3", x,
                  ConvAttrs{out_channels, 1, 1, 1, 1, 0, 0});
    x = g.addBatchNorm(name + "_bn3", x);

    LayerId shortcut = input;
    if (project) {
        shortcut = g.addConv(name + "_proj", input,
                             ConvAttrs{out_channels, 1, 1, stride, stride,
                                       0, 0});
        shortcut = g.addBatchNorm(name + "_proj_bn", shortcut);
    }
    LayerId sum = g.addAdd(name + "_add", x, shortcut);
    return g.addRelu(name + "_relu3", sum);
}

} // namespace

Graph
buildResnet(int depth, std::int64_t batch)
{
    ACCPAR_REQUIRE(batch >= 1, "batch must be positive");

    std::array<int, 4> blocks;
    bool bottleneck = false;
    switch (depth) {
      case 18:
        blocks = {2, 2, 2, 2};
        break;
      case 34:
        blocks = {3, 4, 6, 3};
        break;
      case 50:
        blocks = {3, 4, 6, 3};
        bottleneck = true;
        break;
      default:
        throw util::ConfigError("resnet depth must be 18, 34 or 50, got " +
                                std::to_string(depth));
    }

    Graph g("resnet" + std::to_string(depth));
    LayerId x = g.addInput("data", TensorShape(batch, 3, 224, 224));

    x = g.addConv("cv1", x, ConvAttrs{64, 7, 7, 2, 2, 3, 3});
    x = g.addBatchNorm("cv1_bn", x);
    x = g.addRelu("cv1_relu", x);
    x = g.addMaxPool("pool1", x, PoolAttrs{3, 3, 2, 2, 1, 1});

    const std::array<std::int64_t, 4> stage_channels = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const std::string name =
                "s" + std::to_string(stage + 1) + "b" + std::to_string(b +
                                                                       1);
            const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
            // The first block of each stage changes the channel count
            // (always, for bottleneck stage 1: 64 -> 256), so it needs a
            // projection shortcut.
            const bool project = (b == 0) && (bottleneck || stage > 0);
            if (bottleneck) {
                x = bottleneckBlock(g, name, x, stage_channels[stage],
                                    stride, project);
            } else {
                x = basicBlock(g, name, x, stage_channels[stage], stride,
                               project);
            }
        }
    }

    x = g.addGlobalAvgPool("gap", x);
    x = g.addFlatten("flatten", x);
    x = g.addFullyConnected("fc1", x, 1000);
    g.addSoftmax("prob", x);

    g.validate();
    return g;
}

} // namespace accpar::models
