#include "models/model_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.h"

namespace accpar::models {

namespace {

using graph::Graph;
using graph::LayerId;
using util::Json;

/** Resolves a referenced layer name to its id. */
LayerId
lookup(const std::map<std::string, LayerId> &names,
       const std::string &name)
{
    auto it = names.find(name);
    ACCPAR_REQUIRE(it != names.end(),
                   "model json references unknown layer '" << name
                                                           << "'");
    return it->second;
}

std::int64_t
intField(const Json &layer, const std::string &key,
         std::int64_t fallback)
{
    if (!layer.contains(key))
        return fallback;
    return layer.at(key).asInt();
}

std::int64_t
requiredInt(const Json &layer, const std::string &key,
            const std::string &op)
{
    ACCPAR_REQUIRE(layer.contains(key),
                   "model json: '" << op << "' layer needs a '" << key
                                   << "' field");
    return layer.at(key).asInt();
}

} // namespace

graph::Graph
modelFromJson(const Json &doc)
{
    const std::string name = doc.contains("name")
                                 ? doc.at("name").asString()
                                 : "custom-model";
    Graph g(name);

    const Json &input = doc.at("input");
    LayerId previous = g.addInput(
        "data",
        graph::TensorShape(input.at("batch").asInt(),
                           input.at("channels").asInt(),
                           intField(input, "height", 1),
                           intField(input, "width", 1)));

    std::map<std::string, LayerId> names;
    names["data"] = previous;

    int counter = 0;
    for (const Json &layer : doc.at("layers").asArray()) {
        const std::string op = layer.at("op").asString();
        const std::string layer_name =
            layer.contains("name")
                ? layer.at("name").asString()
                : op + std::to_string(++counter);

        // Default operand: the previous layer; overridable by "input".
        LayerId operand = previous;
        if (layer.contains("input"))
            operand = lookup(names, layer.at("input").asString());

        LayerId id;
        if (op == "conv") {
            const std::int64_t kernel =
                requiredInt(layer, "kernel", op);
            const std::int64_t stride = intField(layer, "stride", 1);
            const std::int64_t pad = intField(layer, "pad", 0);
            id = g.addConv(layer_name, operand,
                           graph::ConvAttrs{
                               requiredInt(layer, "out", op),
                               intField(layer, "kernel_h", kernel),
                               intField(layer, "kernel_w", kernel),
                               intField(layer, "stride_h", stride),
                               intField(layer, "stride_w", stride),
                               intField(layer, "pad_h", pad),
                               intField(layer, "pad_w", pad)});
        } else if (op == "fc") {
            id = g.addFullyConnected(layer_name, operand,
                                     requiredInt(layer, "out", op));
        } else if (op == "maxpool" || op == "avgpool") {
            const std::int64_t kernel =
                requiredInt(layer, "kernel", op);
            const std::int64_t stride =
                intField(layer, "stride", kernel);
            const std::int64_t pad = intField(layer, "pad", 0);
            const graph::PoolAttrs attrs{
                intField(layer, "kernel_h", kernel),
                intField(layer, "kernel_w", kernel),
                intField(layer, "stride_h", stride),
                intField(layer, "stride_w", stride),
                intField(layer, "pad_h", pad),
                intField(layer, "pad_w", pad)};
            id = op == "maxpool"
                     ? g.addMaxPool(layer_name, operand, attrs)
                     : g.addAvgPool(layer_name, operand, attrs);
        } else if (op == "gavgpool") {
            id = g.addGlobalAvgPool(layer_name, operand);
        } else if (op == "relu") {
            id = g.addRelu(layer_name, operand);
        } else if (op == "bn") {
            id = g.addBatchNorm(layer_name, operand);
        } else if (op == "lrn") {
            id = g.addLrn(layer_name, operand);
        } else if (op == "dropout") {
            id = g.addDropout(layer_name, operand);
        } else if (op == "flatten") {
            id = g.addFlatten(layer_name, operand);
        } else if (op == "softmax") {
            id = g.addSoftmax(layer_name, operand);
        } else if (op == "add" || op == "concat") {
            ACCPAR_REQUIRE(layer.contains("inputs"),
                           "model json: '" << op
                               << "' layer needs an 'inputs' list");
            std::vector<LayerId> operands;
            for (const Json &ref : layer.at("inputs").asArray())
                operands.push_back(lookup(names, ref.asString()));
            if (op == "add") {
                ACCPAR_REQUIRE(operands.size() == 2,
                               "model json: 'add' takes exactly two "
                               "inputs");
                id = g.addAdd(layer_name, operands[0], operands[1]);
            } else {
                id = g.addConcat(layer_name, operands);
            }
        } else {
            throw util::ConfigError("model json: unknown op '" + op +
                                    "'");
        }

        ACCPAR_REQUIRE(names.emplace(layer_name, id).second,
                       "model json: duplicate layer name '"
                           << layer_name << "'");
        previous = id;
    }

    g.validate();
    return g;
}

graph::Graph
loadModelFile(const std::string &path)
{
    std::ifstream in(path);
    ACCPAR_REQUIRE(in.is_open(), "cannot open model file " << path);
    std::ostringstream text;
    text << in.rdbuf();
    return modelFromJson(Json::parse(text.str()));
}

} // namespace accpar::models
