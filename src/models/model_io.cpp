#include "models/model_io.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/graph_linter.h"
#include "util/error.h"

namespace accpar::models {

namespace {

using graph::Graph;
using graph::LayerId;
using util::Json;

/** Resolves a referenced layer name to its id. */
LayerId
lookup(const std::map<std::string, LayerId> &names,
       const std::string &name)
{
    auto it = names.find(name);
    ACCPAR_REQUIRE(it != names.end(),
                   "model json references unknown layer '" << name
                                                           << "'");
    return it->second;
}

std::int64_t
intField(const Json &layer, const std::string &key,
         std::int64_t fallback)
{
    if (!layer.contains(key))
        return fallback;
    return layer.at(key).asInt();
}

std::int64_t
requiredInt(const Json &layer, const std::string &key,
            const std::string &op)
{
    ACCPAR_REQUIRE(layer.contains(key),
                   "model json: '" << op << "' layer needs a '" << key
                                   << "' field");
    return layer.at(key).asInt();
}

} // namespace

graph::Graph
modelFromJson(const Json &doc)
{
    const std::string name = doc.contains("name")
                                 ? doc.at("name").asString()
                                 : "custom-model";
    Graph g(name);

    const Json &input = doc.at("input");
    LayerId previous = g.addInput(
        "data",
        graph::TensorShape(input.at("batch").asInt(),
                           input.at("channels").asInt(),
                           intField(input, "height", 1),
                           intField(input, "width", 1)));

    std::map<std::string, LayerId> names;
    names["data"] = previous;

    int counter = 0;
    for (const Json &layer : doc.at("layers").asArray()) {
        const std::string op = layer.at("op").asString();
        const std::string layer_name =
            layer.contains("name")
                ? layer.at("name").asString()
                : op + std::to_string(++counter);

        // Default operand: the previous layer; overridable by "input".
        LayerId operand = previous;
        if (layer.contains("input"))
            operand = lookup(names, layer.at("input").asString());

        LayerId id;
        if (op == "conv") {
            const std::int64_t kernel =
                requiredInt(layer, "kernel", op);
            const std::int64_t stride = intField(layer, "stride", 1);
            const std::int64_t pad = intField(layer, "pad", 0);
            id = g.addConv(layer_name, operand,
                           graph::ConvAttrs{
                               requiredInt(layer, "out", op),
                               intField(layer, "kernel_h", kernel),
                               intField(layer, "kernel_w", kernel),
                               intField(layer, "stride_h", stride),
                               intField(layer, "stride_w", stride),
                               intField(layer, "pad_h", pad),
                               intField(layer, "pad_w", pad)});
        } else if (op == "fc") {
            id = g.addFullyConnected(layer_name, operand,
                                     requiredInt(layer, "out", op));
        } else if (op == "maxpool" || op == "avgpool") {
            const std::int64_t kernel =
                requiredInt(layer, "kernel", op);
            const std::int64_t stride =
                intField(layer, "stride", kernel);
            const std::int64_t pad = intField(layer, "pad", 0);
            const graph::PoolAttrs attrs{
                intField(layer, "kernel_h", kernel),
                intField(layer, "kernel_w", kernel),
                intField(layer, "stride_h", stride),
                intField(layer, "stride_w", stride),
                intField(layer, "pad_h", pad),
                intField(layer, "pad_w", pad)};
            id = op == "maxpool"
                     ? g.addMaxPool(layer_name, operand, attrs)
                     : g.addAvgPool(layer_name, operand, attrs);
        } else if (op == "gavgpool") {
            id = g.addGlobalAvgPool(layer_name, operand);
        } else if (op == "relu") {
            id = g.addRelu(layer_name, operand);
        } else if (op == "bn") {
            id = g.addBatchNorm(layer_name, operand);
        } else if (op == "lrn") {
            id = g.addLrn(layer_name, operand);
        } else if (op == "dropout") {
            id = g.addDropout(layer_name, operand);
        } else if (op == "flatten") {
            id = g.addFlatten(layer_name, operand);
        } else if (op == "softmax") {
            id = g.addSoftmax(layer_name, operand);
        } else if (op == "add" || op == "concat") {
            ACCPAR_REQUIRE(layer.contains("inputs"),
                           "model json: '" << op
                               << "' layer needs an 'inputs' list");
            std::vector<LayerId> operands;
            for (const Json &ref : layer.at("inputs").asArray())
                operands.push_back(lookup(names, ref.asString()));
            if (op == "add") {
                ACCPAR_REQUIRE(operands.size() == 2,
                               "model json: 'add' takes exactly two "
                               "inputs");
                id = g.addAdd(layer_name, operands[0], operands[1]);
            } else {
                id = g.addConcat(layer_name, operands);
            }
        } else {
            throw util::ConfigError("model json: unknown op '" + op +
                                    "'");
        }

        ACCPAR_REQUIRE(names.emplace(layer_name, id).second,
                       "model json: duplicate layer name '"
                           << layer_name << "'");
        previous = id;
    }

    g.validate();
    return g;
}

graph::Graph
loadModelFile(const std::string &path)
{
    std::ifstream in(path);
    ACCPAR_REQUIRE(in.is_open(), "cannot open model file " << path);
    std::ostringstream text;
    text << in.rdbuf();
    return modelFromJson(Json::parse(text.str()));
}

namespace {

using analysis::DiagnosticSink;

const std::set<std::string> kKnownOps = {
    "conv", "fc",      "maxpool", "avgpool", "gavgpool", "relu",
    "bn",   "lrn",     "dropout", "flatten", "softmax",  "add",
    "concat"};

/** True when @p value is absent or a JSON number. */
bool
numericIfPresent(const Json &layer, const char *key)
{
    return !layer.contains(key) ||
           layer.at(key).kind() == Json::Kind::Number;
}

/**
 * Checks one "layers" entry against the document format: known op,
 * required per-op fields present, numeric fields numeric, referenced
 * layers already defined. @p names holds every name defined by earlier
 * entries (mirroring the builder's implicit-chaining scan).
 */
void
scanLayerEntry(const Json &layer, const std::string &where,
               const std::set<std::string> &names, DiagnosticSink &sink)
{
    const std::string op = layer.at("op").asString();
    if (kKnownOps.count(op) == 0) {
        sink.error("AMIO05", where, "unknown op '" + op + "'",
                   "supported ops: conv, fc, maxpool, avgpool, "
                   "gavgpool, relu, bn, lrn, dropout, flatten, "
                   "softmax, add, concat");
        return;
    }

    std::vector<const char *> required;
    if (op == "conv")
        required = {"out", "kernel"};
    else if (op == "fc")
        required = {"out"};
    else if (op == "maxpool" || op == "avgpool")
        required = {"kernel"};
    for (const char *key : required) {
        if (!layer.contains(key) ||
            layer.at(key).kind() != Json::Kind::Number) {
            sink.error("AMIO02", where,
                       "'" + op + "' layer needs a numeric '" + key +
                           "' field");
        }
    }
    for (const char *key :
         {"out", "kernel", "kernel_h", "kernel_w", "stride",
          "stride_h", "stride_w", "pad", "pad_h", "pad_w"}) {
        if (!numericIfPresent(layer, key)) {
            sink.error("AMIO02", where,
                       std::string("field '") + key +
                           "' must be a number");
        }
    }

    if (layer.contains("input")) {
        if (layer.at("input").kind() != Json::Kind::String) {
            sink.error("AMIO02", where,
                       "'input' must be the name of an earlier layer");
        } else if (names.count(layer.at("input").asString()) == 0) {
            sink.error("AMIO03", where,
                       "references unknown layer '" +
                           layer.at("input").asString() + "'",
                       "layers may only consume earlier layers; "
                       "cycles and forward references are impossible");
        }
    }
    if (op == "add" || op == "concat") {
        if (!layer.contains("inputs") ||
            layer.at("inputs").kind() != Json::Kind::Array) {
            sink.error("AMIO02", where,
                       "'" + op + "' layer needs an 'inputs' list");
            return;
        }
        const auto &refs = layer.at("inputs").asArray();
        if (op == "add" && refs.size() != 2) {
            sink.error("AMIO02", where,
                       "'add' takes exactly two inputs, got " +
                           std::to_string(refs.size()));
        }
        for (const Json &ref : refs) {
            if (ref.kind() != Json::Kind::String) {
                sink.error("AMIO02", where,
                           "'inputs' entries must be layer names");
            } else if (names.count(ref.asString()) == 0) {
                sink.error("AMIO03", where,
                           "references unknown layer '" +
                               ref.asString() + "'",
                           "layers may only consume earlier layers; "
                           "cycles and forward references are "
                           "impossible");
            }
        }
    }
}

/**
 * Document-level pre-scan: reports every format violation the builder
 * would otherwise hit as an exception (or worse, mis-build through).
 * Returns true when the document is clean enough to hand the builder.
 */
bool
scanModelDocument(const Json &doc, DiagnosticSink &sink)
{
    const std::size_t errors_before = sink.errorCount();

    if (doc.kind() != Json::Kind::Object) {
        sink.error("AMIO01", "model document",
                   "model document must be a JSON object");
        return false;
    }
    if (doc.contains("name") &&
        doc.at("name").kind() != Json::Kind::String) {
        sink.error("AMIO01", "model document",
                   "'name' must be a string");
    }
    if (!doc.contains("input") ||
        doc.at("input").kind() != Json::Kind::Object) {
        sink.error("AMIO01", "model document",
                   "missing 'input' object",
                   "describe the input tensor: {\"batch\": ..., "
                   "\"channels\": ..., \"height\": ..., "
                   "\"width\": ...}");
    } else {
        const Json &input = doc.at("input");
        for (const char *key : {"batch", "channels"}) {
            if (!input.contains(key) ||
                input.at(key).kind() != Json::Kind::Number) {
                sink.error("AMIO01", "model document",
                           std::string("'input' needs a numeric '") +
                               key + "' field");
            }
        }
        for (const char *key : {"height", "width"}) {
            if (!numericIfPresent(input, key)) {
                sink.error("AMIO01", "model document",
                           std::string("'input.") + key +
                               "' must be a number");
            }
        }
    }
    if (!doc.contains("layers") ||
        doc.at("layers").kind() != Json::Kind::Array) {
        sink.error("AMIO01", "model document",
                   "missing 'layers' array");
        return false;
    }

    std::set<std::string> names = {"data"};
    int counter = 0;
    std::size_t index = 0;
    for (const Json &layer : doc.at("layers").asArray()) {
        const std::string where =
            "layers[" + std::to_string(index++) + "]";
        if (layer.kind() != Json::Kind::Object ||
            !layer.contains("op") ||
            layer.at("op").kind() != Json::Kind::String) {
            sink.error("AMIO02", where,
                       "layer entries must be objects with a string "
                       "'op' field");
            continue;
        }
        if (layer.contains("name") &&
            layer.at("name").kind() != Json::Kind::String) {
            sink.error("AMIO02", where, "'name' must be a string");
            continue;
        }
        scanLayerEntry(layer, where, names, sink);

        const std::string layer_name =
            layer.contains("name")
                ? layer.at("name").asString()
                : layer.at("op").asString() +
                      std::to_string(++counter);
        if (!names.insert(layer_name).second) {
            sink.error("AMIO04", where,
                       "duplicate layer name '" + layer_name + "'",
                       "give every layer a unique name");
        }
    }

    return sink.errorCount() == errors_before;
}

} // namespace

std::optional<graph::Graph>
modelFromJson(const Json &doc, analysis::DiagnosticSink &sink)
{
    if (!scanModelDocument(doc, sink))
        return std::nullopt;

    std::optional<graph::Graph> g;
    try {
        g.emplace(modelFromJson(doc));
    } catch (const util::Error &e) {
        // The pre-scan covers the document format; what remains are
        // semantic violations surfaced while building (degenerate
        // dims, shape-inference failures, ...).
        sink.error("AMIO06", "model document",
                   std::string("graph construction failed: ") +
                       e.what());
        return std::nullopt;
    }

    if (!analysis::lintGraph(*g, sink))
        return std::nullopt;
    return g;
}

std::optional<graph::Graph>
loadModelFile(const std::string &path, analysis::DiagnosticSink &sink)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        sink.error("AMIO01", path,
                   "cannot open model file for reading",
                   "check the path and permissions");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Json doc;
    try {
        doc = Json::parse(text.str());
    } catch (const util::Error &e) {
        sink.error("AMIO01", path,
                   std::string("file is not valid JSON: ") + e.what());
        return std::nullopt;
    }
    return modelFromJson(doc, sink);
}

} // namespace accpar::models
