#include "models/import.h"

#include <cctype>
#include <cstddef>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/graph_linter.h"
#include "models/model_io.h"
#include "util/error.h"
#include "util/string_util.h"

namespace accpar::models {

namespace {

using analysis::DiagnosticSink;
using graph::Graph;
using graph::LayerId;
using util::Json;

/** Throws the first (most severe) collected finding as a ConfigError. */
[[noreturn]] void
throwFirstError(DiagnosticSink &sink)
{
    sink.sort();
    ACCPAR_ASSERT(!sink.empty(),
                  "importer returned no graph and no diagnostics");
    throw util::ConfigError(sink.diagnostics().front().toString());
}

// ---------------------------------------------------------------------
// DOT (the graph::toDot dialect)
// ---------------------------------------------------------------------

struct DotNode
{
    int id = -1;
    std::string op;
    std::string name;
    /** The accpar_attrs payload, still as "k=v,..." text. */
    std::string attrs;
};

struct DotEdge
{
    int from = -1;
    int to = -1;
};

struct DotModel
{
    std::string name;
    std::vector<DotNode> nodes;
    /** In file order == operand order (see toDot). */
    std::vector<DotEdge> edges;
};

/** Value of a `key="value"` attribute on @p line, if present. */
std::optional<std::string>
dotAttr(const std::string &line, const std::string &key)
{
    const std::string needle = key + "=\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return std::nullopt;
    const std::size_t begin = at + needle.size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return std::nullopt;
    return line.substr(begin, end - begin);
}

/** Parses "n<digits>" at @p pos; advances @p pos past the digits. */
std::optional<int>
dotNodeId(const std::string &text, std::size_t &pos)
{
    if (pos >= text.size() || text[pos] != 'n')
        return std::nullopt;
    std::size_t digits = pos + 1;
    while (digits < text.size() && std::isdigit(
               static_cast<unsigned char>(text[digits])))
        ++digits;
    if (digits == pos + 1)
        return std::nullopt;
    const int id = std::stoi(text.substr(pos + 1, digits - pos - 1));
    pos = digits;
    return id;
}

/** Splits the file into header, node lines, and edge lines. */
bool
parseDot(const std::string &text, DotModel &model, DiagnosticSink &sink)
{
    const std::size_t errors_before = sink.errorCount();
    std::istringstream is(text);
    std::string raw;
    bool saw_header = false;
    int line_no = 0;
    while (std::getline(is, raw)) {
        ++line_no;
        const std::string line = util::trim(raw);
        const std::string where = "line " + std::to_string(line_no);
        if (line.empty())
            continue;
        if (!saw_header) {
            if (line.rfind("digraph", 0) != 0) {
                sink.error("ADOT01", where,
                           "file does not start with a digraph header",
                           "only DOT files written by graph::toDot "
                           "are loadable");
                return false;
            }
            const std::size_t q1 = line.find('"');
            const std::size_t q2 = q1 == std::string::npos
                                       ? std::string::npos
                                       : line.find('"', q1 + 1);
            model.name = q2 != std::string::npos
                             ? line.substr(q1 + 1, q2 - q1 - 1)
                             : "imported-model";
            saw_header = true;
            continue;
        }
        if (line == "}")
            break;
        if (line.find("->") != std::string::npos) {
            std::size_t pos = 0;
            const auto from = dotNodeId(line, pos);
            while (pos < line.size() &&
                   (line[pos] == ' ' || line[pos] == '-' ||
                    line[pos] == '>'))
                ++pos;
            const auto to = dotNodeId(line, pos);
            if (!from || !to) {
                sink.error("ADOT01", where,
                           "malformed edge line: expected "
                           "'n<id> -> n<id>'");
                continue;
            }
            model.edges.push_back({*from, *to});
            continue;
        }
        if (line[0] == 'n' &&
            line.find('[') != std::string::npos) {
            std::size_t pos = 0;
            const auto id = dotNodeId(line, pos);
            if (!id) {
                sink.error("ADOT01", where,
                           "malformed node line: expected "
                           "'n<id> [...]'");
                continue;
            }
            DotNode node;
            node.id = *id;
            const auto op = dotAttr(line, "accpar_op");
            const auto name = dotAttr(line, "accpar_name");
            if (!op || !name) {
                sink.error(
                    "ADOT02", where,
                    "node n" + std::to_string(*id) +
                        " lacks accpar_op/accpar_name attributes",
                    "only DOT files written by graph::toDot carry "
                    "the machine-readable layer description");
                continue;
            }
            node.op = *op;
            node.name = *name;
            node.attrs = dotAttr(line, "accpar_attrs").value_or("");
            model.nodes.push_back(node);
            continue;
        }
        // Presentation-only lines (rankdir, subgraph styling, ...).
    }
    if (!saw_header) {
        sink.error("ADOT01", "dot document",
                   "file does not start with a digraph header",
                   "only DOT files written by graph::toDot are "
                   "loadable");
        return false;
    }
    if (model.nodes.empty()) {
        sink.error("ADOT01", "dot document",
                   "no accpar-annotated node lines found");
    }
    return sink.errorCount() == errors_before;
}

/** Parsed "k=v,..." payload of one node. */
std::optional<std::map<std::string, std::int64_t>>
parseDotAttrs(const DotNode &node, DiagnosticSink &sink)
{
    std::map<std::string, std::int64_t> out;
    if (node.attrs.empty())
        return out;
    for (const std::string &pair : util::split(node.attrs, ',')) {
        const std::size_t eq = pair.find('=');
        bool ok = eq != std::string::npos && eq > 0;
        if (ok) {
            try {
                std::size_t used = 0;
                const std::int64_t value =
                    std::stoll(pair.substr(eq + 1), &used);
                ok = used == pair.size() - eq - 1;
                if (ok)
                    out[pair.substr(0, eq)] = value;
            } catch (const std::exception &) {
                ok = false;
            }
        }
        if (!ok) {
            sink.error("ADOT02", "node " + node.name,
                       "malformed accpar_attrs entry '" + pair + "'",
                       "entries must be key=<integer>");
            return std::nullopt;
        }
    }
    return out;
}

/** Required integer attribute of a node. */
std::optional<std::int64_t>
dotAttrInt(const std::map<std::string, std::int64_t> &attrs,
           const std::string &key, const DotNode &node,
           DiagnosticSink &sink)
{
    auto it = attrs.find(key);
    if (it == attrs.end()) {
        sink.error("ADOT02", "node " + node.name,
                   "'" + node.op + "' node needs an accpar_attrs '" +
                       key + "' entry");
        return std::nullopt;
    }
    return it->second;
}

std::optional<Graph>
buildFromDot(const DotModel &model, DiagnosticSink &sink)
{
    const std::size_t errors_before = sink.errorCount();

    // Ids must be exactly 0..n-1 in some order; re-index by id so the
    // construction order is the original (topological) layer order.
    std::vector<const DotNode *> by_id(model.nodes.size(), nullptr);
    for (const DotNode &node : model.nodes) {
        if (node.id < 0 ||
            static_cast<std::size_t>(node.id) >= by_id.size() ||
            by_id[node.id] != nullptr) {
            sink.error("ADOT01", "node " + node.name,
                       "node ids must be unique and contiguous from "
                       "n0");
            return std::nullopt;
        }
        by_id[node.id] = &node;
    }
    std::vector<std::vector<int>> operands(by_id.size());
    for (const DotEdge &edge : model.edges) {
        if (edge.from < 0 ||
            static_cast<std::size_t>(edge.from) >= by_id.size() ||
            edge.to < 0 ||
            static_cast<std::size_t>(edge.to) >= by_id.size()) {
            sink.error("ADOT01", "dot document",
                       "edge references a node id that has no node "
                       "line");
            return std::nullopt;
        }
        if (edge.from >= edge.to) {
            sink.error("ADOT01", "dot document",
                       "edge n" + std::to_string(edge.from) + " -> n" +
                           std::to_string(edge.to) +
                           " does not increase the node id",
                       "toDot emits layers in topological id order");
            return std::nullopt;
        }
        operands[edge.to].push_back(edge.from);
    }

    Graph g(model.name);
    std::vector<LayerId> ids(by_id.size(), graph::kInvalidLayer);
    for (std::size_t i = 0; i < by_id.size(); ++i) {
        const DotNode &node = *by_id[i];
        const auto attrs = parseDotAttrs(node, sink);
        if (!attrs)
            return std::nullopt;
        const std::vector<int> &ops = operands[i];
        const auto expectOperands = [&](std::size_t count) {
            if (ops.size() == count)
                return true;
            sink.error("ADOT02", "node " + node.name,
                       "'" + node.op + "' node takes " +
                           std::to_string(count) + " inputs, got " +
                           std::to_string(ops.size()));
            return false;
        };
        const auto operand = [&](std::size_t index) {
            return ids[ops[index]];
        };
        try {
            if (node.op == "input") {
                const auto batch = dotAttrInt(*attrs, "batch", node,
                                              sink);
                const auto channels =
                    dotAttrInt(*attrs, "channels", node, sink);
                const auto height = dotAttrInt(*attrs, "height", node,
                                               sink);
                const auto width = dotAttrInt(*attrs, "width", node,
                                              sink);
                if (!expectOperands(0) || !batch || !channels ||
                    !height || !width)
                    return std::nullopt;
                ids[i] = g.addInput(
                    node.name, graph::TensorShape(*batch, *channels,
                                                  *height, *width));
            } else if (node.op == "conv") {
                const auto out = dotAttrInt(*attrs, "out", node, sink);
                const auto kh = dotAttrInt(*attrs, "kernel_h", node,
                                           sink);
                const auto kw = dotAttrInt(*attrs, "kernel_w", node,
                                           sink);
                const auto sh = dotAttrInt(*attrs, "stride_h", node,
                                           sink);
                const auto sw = dotAttrInt(*attrs, "stride_w", node,
                                           sink);
                const auto ph = dotAttrInt(*attrs, "pad_h", node,
                                           sink);
                const auto pw = dotAttrInt(*attrs, "pad_w", node,
                                           sink);
                if (!expectOperands(1) || !out || !kh || !kw || !sh ||
                    !sw || !ph || !pw)
                    return std::nullopt;
                ids[i] = g.addConv(node.name, operand(0),
                                   graph::ConvAttrs{*out, *kh, *kw,
                                                    *sh, *sw, *ph,
                                                    *pw});
            } else if (node.op == "fc") {
                const auto out = dotAttrInt(*attrs, "out", node, sink);
                if (!expectOperands(1) || !out)
                    return std::nullopt;
                ids[i] = g.addFullyConnected(node.name, operand(0),
                                             *out);
            } else if (node.op == "maxpool" || node.op == "avgpool") {
                const auto kh = dotAttrInt(*attrs, "kernel_h", node,
                                           sink);
                const auto kw = dotAttrInt(*attrs, "kernel_w", node,
                                           sink);
                const auto sh = dotAttrInt(*attrs, "stride_h", node,
                                           sink);
                const auto sw = dotAttrInt(*attrs, "stride_w", node,
                                           sink);
                const auto ph = dotAttrInt(*attrs, "pad_h", node,
                                           sink);
                const auto pw = dotAttrInt(*attrs, "pad_w", node,
                                           sink);
                if (!expectOperands(1) || !kh || !kw || !sh || !sw ||
                    !ph || !pw)
                    return std::nullopt;
                const graph::PoolAttrs pool{*kh, *kw, *sh, *sw, *ph,
                                            *pw};
                ids[i] = node.op == "maxpool"
                             ? g.addMaxPool(node.name, operand(0),
                                            pool)
                             : g.addAvgPool(node.name, operand(0),
                                            pool);
            } else if (node.op == "add") {
                if (!expectOperands(2))
                    return std::nullopt;
                ids[i] = g.addAdd(node.name, operand(0), operand(1));
            } else if (node.op == "concat") {
                if (ops.size() < 2) {
                    sink.error("ADOT02", "node " + node.name,
                               "'concat' node takes at least two "
                               "inputs, got " +
                                   std::to_string(ops.size()));
                    return std::nullopt;
                }
                std::vector<LayerId> inputs;
                for (std::size_t o = 0; o < ops.size(); ++o)
                    inputs.push_back(operand(o));
                ids[i] = g.addConcat(node.name, inputs);
            } else {
                const std::map<std::string,
                               LayerId (Graph::*)(const std::string &,
                                                  LayerId)>
                    unary = {{"gavgpool", &Graph::addGlobalAvgPool},
                             {"relu", &Graph::addRelu},
                             {"bn", &Graph::addBatchNorm},
                             {"lrn", &Graph::addLrn},
                             {"dropout", &Graph::addDropout},
                             {"flatten", &Graph::addFlatten},
                             {"softmax", &Graph::addSoftmax}};
                auto it = unary.find(node.op);
                if (it == unary.end()) {
                    sink.error("ADOT02", "node " + node.name,
                               "unknown accpar_op '" + node.op + "'");
                    return std::nullopt;
                }
                if (!expectOperands(1))
                    return std::nullopt;
                ids[i] = (g.*it->second)(node.name, operand(0));
            }
        } catch (const util::Error &e) {
            sink.error("ADOT03", "node " + node.name,
                       std::string("graph construction failed: ") +
                           e.what());
            return std::nullopt;
        }
    }

    try {
        g.validate();
    } catch (const util::Error &e) {
        sink.error("ADOT03", "dot document",
                   std::string("imported graph is malformed: ") +
                       e.what());
        return std::nullopt;
    }
    if (!analysis::lintGraph(g, sink))
        return std::nullopt;
    if (sink.errorCount() != errors_before)
        return std::nullopt;
    return g;
}

// ---------------------------------------------------------------------
// ONNX-as-JSON (shapes-only subset)
// ---------------------------------------------------------------------

/** Finds one entry of a node's "attribute" array by name. */
const Json *
onnxAttr(const Json &node, const std::string &name)
{
    if (!node.contains("attribute") ||
        node.at("attribute").kind() != Json::Kind::Array)
        return nullptr;
    for (const Json &attr : node.at("attribute").asArray()) {
        if (attr.kind() == Json::Kind::Object &&
            attr.contains("name") &&
            attr.at("name").kind() == Json::Kind::String &&
            attr.at("name").asString() == name)
            return &attr;
    }
    return nullptr;
}

/** Integer attribute ("i" payload) or @p fallback. */
std::int64_t
onnxAttrInt(const Json &node, const std::string &name,
            std::int64_t fallback)
{
    const Json *attr = onnxAttr(node, name);
    if (attr == nullptr || !attr->contains("i") ||
        attr->at("i").kind() != Json::Kind::Number)
        return fallback;
    return attr->at("i").asInt();
}

/** Integer-list attribute ("ints" payload), or empty when absent. */
std::optional<std::vector<std::int64_t>>
onnxAttrInts(const Json &node, const std::string &name)
{
    const Json *attr = onnxAttr(node, name);
    if (attr == nullptr)
        return std::nullopt;
    if (!attr->contains("ints") ||
        attr->at("ints").kind() != Json::Kind::Array)
        return std::nullopt;
    std::vector<std::int64_t> out;
    for (const Json &v : attr->at("ints").asArray()) {
        if (v.kind() != Json::Kind::Number)
            return std::nullopt;
        out.push_back(v.asInt());
    }
    return out;
}

/**
 * Symmetric (pad_h, pad_w) from an ONNX "pads" attribute
 * [h_begin, w_begin, h_end, w_end]; nullopt + diagnostic when the
 * padding is asymmetric or malformed.
 */
std::optional<std::pair<std::int64_t, std::int64_t>>
onnxPads(const Json &node, const std::string &where,
         DiagnosticSink &sink)
{
    const auto pads = onnxAttrInts(node, "pads");
    if (!pads)
        return std::make_pair<std::int64_t, std::int64_t>(0, 0);
    if (pads->size() == 2)
        return std::make_pair((*pads)[0], (*pads)[1]);
    if (pads->size() == 4) {
        if ((*pads)[0] != (*pads)[2] || (*pads)[1] != (*pads)[3]) {
            sink.error("AONX02", where,
                       "asymmetric padding is not supported by the "
                       "shapes-only importer");
            return std::nullopt;
        }
        return std::make_pair((*pads)[0], (*pads)[1]);
    }
    sink.error("AONX02", where,
               "'pads' must hold 2 or 4 integers, got " +
                   std::to_string(pads->size()));
    return std::nullopt;
}

/** Weight dims (initializer "dims") with an arity check. */
std::optional<std::vector<std::int64_t>>
onnxWeightDims(
    const std::map<std::string, std::vector<std::int64_t>> &weights,
    const std::string &tensor, std::size_t arity,
    const std::string &where, DiagnosticSink &sink)
{
    auto it = weights.find(tensor);
    if (it == weights.end()) {
        sink.error("AONX03", where,
                   "references tensor '" + tensor +
                       "', which is neither a node output nor an "
                       "initializer");
        return std::nullopt;
    }
    if (it->second.size() != arity) {
        sink.error("AONX02", where,
                   "weight tensor '" + tensor + "' must have " +
                       std::to_string(arity) + " dims, got " +
                       std::to_string(it->second.size()));
        return std::nullopt;
    }
    return it->second;
}

std::optional<Graph>
importOnnx(const Json &doc, DiagnosticSink &sink)
{
    if (doc.kind() != Json::Kind::Object || !doc.contains("graph") ||
        doc.at("graph").kind() != Json::Kind::Object) {
        sink.error("AONX01", "onnx document",
                   "document must be a JSON object with a 'graph' "
                   "object",
                   "expected an ONNX ModelProto rendered as JSON");
        return std::nullopt;
    }
    const Json &gdoc = doc.at("graph");
    const std::string name =
        gdoc.contains("name") &&
                gdoc.at("name").kind() == Json::Kind::String
            ? gdoc.at("name").asString()
            : "onnx-model";

    // Initializers: weight tensors; only name + dims are read.
    std::map<std::string, std::vector<std::int64_t>> weights;
    if (gdoc.contains("initializer")) {
        if (gdoc.at("initializer").kind() != Json::Kind::Array) {
            sink.error("AONX01", "onnx document",
                       "'initializer' must be an array");
            return std::nullopt;
        }
        for (const Json &init : gdoc.at("initializer").asArray()) {
            if (init.kind() != Json::Kind::Object ||
                !init.contains("name") ||
                init.at("name").kind() != Json::Kind::String ||
                !init.contains("dims") ||
                init.at("dims").kind() != Json::Kind::Array) {
                sink.error("AONX01", "onnx document",
                           "initializer entries must be objects with "
                           "'name' and a 'dims' array");
                return std::nullopt;
            }
            std::vector<std::int64_t> dims;
            for (const Json &d : init.at("dims").asArray()) {
                if (d.kind() != Json::Kind::Number) {
                    sink.error("AONX01", "onnx document",
                               "initializer '" +
                                   init.at("name").asString() +
                                   "' has non-numeric dims");
                    return std::nullopt;
                }
                dims.push_back(d.asInt());
            }
            weights[init.at("name").asString()] = std::move(dims);
        }
    }

    // The data input: the one graph.input entry that is not a weight.
    if (!gdoc.contains("input") ||
        gdoc.at("input").kind() != Json::Kind::Array) {
        sink.error("AONX01", "onnx document",
                   "missing 'input' array of value infos");
        return std::nullopt;
    }
    std::string input_name;
    std::vector<std::int64_t> input_dims;
    for (const Json &vi : gdoc.at("input").asArray()) {
        if (vi.kind() != Json::Kind::Object || !vi.contains("name") ||
            vi.at("name").kind() != Json::Kind::String) {
            sink.error("AONX01", "onnx document",
                       "input entries must be objects with a 'name'");
            return std::nullopt;
        }
        const std::string vi_name = vi.at("name").asString();
        if (weights.count(vi_name))
            continue; // older opsets list initializers as inputs
        if (!input_name.empty()) {
            sink.error("AONX01", "onnx document",
                       "model has more than one data input ('" +
                           input_name + "', '" + vi_name + "')",
                       "the planner handles single-input models");
            return std::nullopt;
        }
        input_name = vi_name;
        // name.type.tensor_type.shape.dim[*].dim_value
        const Json *cursor = &vi;
        for (const char *key :
             {"type", "tensor_type", "shape"}) {
            if (!cursor->contains(key) ||
                cursor->at(key).kind() != Json::Kind::Object) {
                cursor = nullptr;
                break;
            }
            cursor = &cursor->at(key);
        }
        if (cursor == nullptr || !cursor->contains("dim") ||
            cursor->at("dim").kind() != Json::Kind::Array) {
            sink.error("AONX01", "input " + vi_name,
                       "missing type.tensor_type.shape.dim");
            return std::nullopt;
        }
        for (const Json &dim : cursor->at("dim").asArray()) {
            if (dim.kind() != Json::Kind::Object ||
                !dim.contains("dim_value") ||
                dim.at("dim_value").kind() != Json::Kind::Number) {
                sink.error("AONX01", "input " + vi_name,
                           "every dim needs a numeric 'dim_value'",
                           "symbolic dims (dim_param) are not "
                           "supported — export with fixed shapes");
                return std::nullopt;
            }
            input_dims.push_back(dim.at("dim_value").asInt());
        }
    }
    if (input_name.empty()) {
        sink.error("AONX01", "onnx document",
                   "no data input found (every 'input' entry is an "
                   "initializer)");
        return std::nullopt;
    }
    if (input_dims.size() < 2 || input_dims.size() > 4) {
        sink.error("AONX01", "input " + input_name,
                   "input rank must be 2..4 (got " +
                       std::to_string(input_dims.size()) + ")");
        return std::nullopt;
    }
    input_dims.resize(4, 1);

    if (!gdoc.contains("node") ||
        gdoc.at("node").kind() != Json::Kind::Array) {
        sink.error("AONX01", "onnx document",
                   "missing 'node' array");
        return std::nullopt;
    }

    Graph g(name);
    std::map<std::string, LayerId> values;
    std::set<std::string> layer_names;
    try {
        values[input_name] = g.addInput(
            input_name,
            graph::TensorShape(input_dims[0], input_dims[1],
                               input_dims[2], input_dims[3]));
        layer_names.insert(input_name);

        int counter = 0;
        std::size_t index = 0;
        for (const Json &node : gdoc.at("node").asArray()) {
            const std::string where =
                "node[" + std::to_string(index++) + "]";
            if (node.kind() != Json::Kind::Object ||
                !node.contains("op_type") ||
                node.at("op_type").kind() != Json::Kind::String) {
                sink.error("AONX02", where,
                           "node entries must be objects with a "
                           "string 'op_type'");
                return std::nullopt;
            }
            const std::string op = node.at("op_type").asString();
            std::string node_name =
                node.contains("name") &&
                        node.at("name").kind() ==
                            Json::Kind::String &&
                        !node.at("name").asString().empty()
                    ? node.at("name").asString()
                    : util::toLower(op) + std::to_string(++counter);
            if (!layer_names.insert(node_name).second) {
                sink.error("AONX02", where,
                           "duplicate node name '" + node_name + "'");
                return std::nullopt;
            }

            // Split inputs into activations (earlier node outputs)
            // and weights (initializers).
            std::vector<LayerId> acts;
            std::vector<std::string> wts;
            if (!node.contains("input") ||
                node.at("input").kind() != Json::Kind::Array ||
                !node.contains("output") ||
                node.at("output").kind() != Json::Kind::Array ||
                node.at("output").asArray().empty()) {
                sink.error("AONX02", where,
                           "node needs 'input' and non-empty "
                           "'output' string arrays");
                return std::nullopt;
            }
            for (const Json &in : node.at("input").asArray()) {
                if (in.kind() != Json::Kind::String) {
                    sink.error("AONX02", where,
                               "'input' entries must be tensor "
                               "names");
                    return std::nullopt;
                }
                const std::string &tensor = in.asString();
                if (tensor.empty())
                    continue; // ONNX optional-input placeholder
                auto it = values.find(tensor);
                if (it != values.end()) {
                    acts.push_back(it->second);
                } else if (weights.count(tensor)) {
                    wts.push_back(tensor);
                } else {
                    sink.error(
                        "AONX03", where,
                        "references tensor '" + tensor +
                            "', which is neither a node output nor "
                            "an initializer",
                        "nodes must be listed in topological "
                        "order");
                    return std::nullopt;
                }
            }
            const auto expectActs = [&](std::size_t count) {
                if (acts.size() == count)
                    return true;
                sink.error("AONX02", where,
                           op + " takes " + std::to_string(count) +
                               " activation input(s), got " +
                               std::to_string(acts.size()));
                return false;
            };

            const auto expectWeight = [&]() {
                if (!wts.empty())
                    return true;
                sink.error("AONX02", where,
                           op + " needs a weight initializer input");
                return false;
            };

            LayerId id = graph::kInvalidLayer;
            if (op == "Conv") {
                if (!expectActs(1) || !expectWeight())
                    return std::nullopt;
                const auto dims = onnxWeightDims(weights, wts[0], 4,
                                                 where, sink);
                if (!dims)
                    return std::nullopt;
                const auto kernel =
                    onnxAttrInts(node, "kernel_shape")
                        .value_or(std::vector<std::int64_t>{
                            (*dims)[2], (*dims)[3]});
                const auto strides =
                    onnxAttrInts(node, "strides")
                        .value_or(std::vector<std::int64_t>{1, 1});
                const auto pads = onnxPads(node, where, sink);
                if (!pads || kernel.size() != 2 ||
                    strides.size() != 2) {
                    if (pads)
                        sink.error("AONX02", where,
                                   "kernel_shape/strides must hold "
                                   "two integers");
                    return std::nullopt;
                }
                id = g.addConv(node_name, acts[0],
                               graph::ConvAttrs{(*dims)[0], kernel[0],
                                                kernel[1], strides[0],
                                                strides[1],
                                                pads->first,
                                                pads->second});
            } else if (op == "Gemm" || op == "MatMul") {
                if (!expectActs(1) || !expectWeight())
                    return std::nullopt;
                const auto dims = onnxWeightDims(weights, wts[0], 2,
                                                 where, sink);
                if (!dims)
                    return std::nullopt;
                const bool trans_b =
                    op == "Gemm" && onnxAttrInt(node, "transB", 0) != 0;
                id = g.addFullyConnected(
                    node_name, acts[0],
                    trans_b ? (*dims)[0] : (*dims)[1]);
            } else if (op == "MaxPool" || op == "AveragePool") {
                if (!expectActs(1))
                    return std::nullopt;
                const auto kernel = onnxAttrInts(node, "kernel_shape");
                if (!kernel || kernel->size() != 2) {
                    sink.error("AONX02", where,
                               op + " needs a two-integer "
                                    "'kernel_shape' attribute");
                    return std::nullopt;
                }
                const auto strides =
                    onnxAttrInts(node, "strides").value_or(*kernel);
                const auto pads = onnxPads(node, where, sink);
                if (!pads || strides.size() != 2) {
                    if (pads)
                        sink.error("AONX02", where,
                                   "'strides' must hold two "
                                   "integers");
                    return std::nullopt;
                }
                const graph::PoolAttrs pool{
                    (*kernel)[0], (*kernel)[1], strides[0],
                    strides[1], pads->first, pads->second};
                id = op == "MaxPool"
                         ? g.addMaxPool(node_name, acts[0], pool)
                         : g.addAvgPool(node_name, acts[0], pool);
            } else if (op == "Add") {
                if (!wts.empty()) {
                    sink.error("AONX02", where,
                               "Add with an initializer operand "
                               "(bias/constant add) is not supported "
                               "by the shapes-only importer");
                    return std::nullopt;
                }
                if (!expectActs(2))
                    return std::nullopt;
                id = g.addAdd(node_name, acts[0], acts[1]);
            } else if (op == "Concat") {
                const std::int64_t axis =
                    onnxAttrInt(node, "axis", 1);
                if (axis != 1) {
                    sink.error("AONX02", where,
                               "Concat axis must be 1 (channels), "
                               "got " + std::to_string(axis));
                    return std::nullopt;
                }
                if (acts.size() < 2 || !wts.empty()) {
                    sink.error("AONX02", where,
                               "Concat takes two or more activation "
                               "inputs");
                    return std::nullopt;
                }
                id = g.addConcat(node_name, acts);
            } else {
                const std::map<std::string,
                               LayerId (Graph::*)(const std::string &,
                                                  LayerId)>
                    unary = {
                        {"GlobalAveragePool",
                         &Graph::addGlobalAvgPool},
                        {"Relu", &Graph::addRelu},
                        {"BatchNormalization", &Graph::addBatchNorm},
                        {"LRN", &Graph::addLrn},
                        {"Dropout", &Graph::addDropout},
                        {"Flatten", &Graph::addFlatten},
                        {"Softmax", &Graph::addSoftmax}};
                auto it = unary.find(op);
                if (it == unary.end()) {
                    sink.error(
                        "AONX02", where,
                        "unsupported op_type '" + op + "'",
                        "supported: Conv, Gemm, MatMul, MaxPool, "
                        "AveragePool, GlobalAveragePool, Relu, "
                        "BatchNormalization, LRN, Dropout, Add, "
                        "Concat, Flatten, Softmax");
                    return std::nullopt;
                }
                // Extra weight operands (BN scale/bias, dropout
                // ratio, ...) are shape-irrelevant and ignored.
                if (!expectActs(1))
                    return std::nullopt;
                id = (g.*it->second)(node_name, acts[0]);
            }

            const Json &out = node.at("output").asArray().front();
            if (out.kind() != Json::Kind::String) {
                sink.error("AONX02", where,
                           "'output' entries must be tensor names");
                return std::nullopt;
            }
            if (!values.emplace(out.asString(), id).second) {
                sink.error("AONX02", where,
                           "duplicate output tensor '" +
                               out.asString() + "'");
                return std::nullopt;
            }
        }
        g.validate();
    } catch (const util::Error &e) {
        sink.error("AONX04", "onnx document",
                   std::string("graph construction failed: ") +
                       e.what());
        return std::nullopt;
    }
    if (!analysis::lintGraph(g, sink))
        return std::nullopt;
    return g;
}

/** True when @p path ends in @p suffix. */
bool
endsWith(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

std::optional<graph::Graph>
importDot(const std::string &text, analysis::DiagnosticSink &sink)
{
    DotModel model;
    if (!parseDot(text, model, sink))
        return std::nullopt;
    return buildFromDot(model, sink);
}

graph::Graph
importDot(const std::string &text)
{
    DiagnosticSink sink;
    auto g = importDot(text, sink);
    if (!g)
        throwFirstError(sink);
    return *g;
}

std::optional<graph::Graph>
importOnnxJson(const util::Json &doc, analysis::DiagnosticSink &sink)
{
    return importOnnx(doc, sink);
}

graph::Graph
importOnnxJson(const util::Json &doc)
{
    DiagnosticSink sink;
    auto g = importOnnx(doc, sink);
    if (!g)
        throwFirstError(sink);
    return *g;
}

std::optional<graph::Graph>
importModel(const std::string &path, analysis::DiagnosticSink &sink)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        sink.error(endsWith(path, ".dot") ? "ADOT01" : "AMIO01", path,
                   "cannot open model file for reading",
                   "check the path and permissions");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (endsWith(path, ".dot"))
        return importDot(text.str(), sink);

    Json doc;
    try {
        doc = Json::parse(text.str());
    } catch (const util::Error &e) {
        sink.error("AMIO01", path,
                   std::string("file is not valid JSON: ") + e.what());
        return std::nullopt;
    }
    if (doc.kind() == Json::Kind::Object && doc.contains("graph"))
        return importOnnx(doc, sink);
    return modelFromJson(doc, sink);
}

graph::Graph
importModel(const std::string &path)
{
    DiagnosticSink sink;
    auto g = importModel(path, sink);
    if (!g)
        throwFirstError(sink);
    return *g;
}

} // namespace accpar::models
