#include "models/zoo.h"

#include <array>
#include <string>

#include "util/error.h"

namespace accpar::models {

using graph::ConvAttrs;
using graph::Graph;
using graph::LayerId;
using graph::PoolAttrs;
using graph::TensorShape;

namespace {

/** Branch widths of one Inception module (GoogLeNet v1). */
struct InceptionCfg
{
    std::int64_t b1;      ///< 1x1
    std::int64_t b2a, b2b; ///< 1x1 reduce -> 3x3
    std::int64_t b3a, b3b; ///< 1x1 reduce -> 5x5
    std::int64_t b4;      ///< pool -> 1x1
};

/**
 * One Inception module: four parallel branches joined by channel
 * concatenation — the multi-path pattern of §5.2 with four paths and a
 * Concat (instead of Add) junction.
 */
LayerId
inceptionModule(Graph &g, const std::string &name, LayerId input,
                const InceptionCfg &cfg)
{
    LayerId b1 = g.addConv(name + "_b1", input,
                           ConvAttrs{cfg.b1, 1, 1, 1, 1, 0, 0});
    b1 = g.addRelu(name + "_b1_relu", b1);

    LayerId b2 = g.addConv(name + "_b2a", input,
                           ConvAttrs{cfg.b2a, 1, 1, 1, 1, 0, 0});
    b2 = g.addRelu(name + "_b2a_relu", b2);
    b2 = g.addConv(name + "_b2b", b2,
                   ConvAttrs{cfg.b2b, 3, 3, 1, 1, 1, 1});
    b2 = g.addRelu(name + "_b2b_relu", b2);

    LayerId b3 = g.addConv(name + "_b3a", input,
                           ConvAttrs{cfg.b3a, 1, 1, 1, 1, 0, 0});
    b3 = g.addRelu(name + "_b3a_relu", b3);
    b3 = g.addConv(name + "_b3b", b3,
                   ConvAttrs{cfg.b3b, 5, 5, 1, 1, 2, 2});
    b3 = g.addRelu(name + "_b3b_relu", b3);

    LayerId b4 = g.addMaxPool(name + "_b4_pool", input,
                              PoolAttrs{3, 3, 1, 1, 1, 1});
    b4 = g.addConv(name + "_b4", b4, ConvAttrs{cfg.b4, 1, 1, 1, 1, 0,
                                               0});
    b4 = g.addRelu(name + "_b4_relu", b4);

    const std::array<LayerId, 4> branches = {b1, b2, b3, b4};
    return g.addConcat(name + "_cat", branches);
}

} // namespace

Graph
buildGooglenet(std::int64_t batch)
{
    ACCPAR_REQUIRE(batch >= 1, "batch must be positive");
    Graph g("googlenet");
    LayerId x = g.addInput("data", TensorShape(batch, 3, 224, 224));

    x = g.addConv("cv1", x, ConvAttrs{64, 7, 7, 2, 2, 3, 3});
    x = g.addRelu("cv1_relu", x);
    x = g.addMaxPool("pool1", x, PoolAttrs{3, 3, 2, 2, 1, 1});
    x = g.addLrn("pool1_lrn", x);

    x = g.addConv("cv2", x, ConvAttrs{64, 1, 1, 1, 1, 0, 0});
    x = g.addRelu("cv2_relu", x);
    x = g.addConv("cv3", x, ConvAttrs{192, 3, 3, 1, 1, 1, 1});
    x = g.addRelu("cv3_relu", x);
    x = g.addLrn("cv3_lrn", x);
    x = g.addMaxPool("pool2", x, PoolAttrs{3, 3, 2, 2, 1, 1});

    x = inceptionModule(g, "i3a", x, {64, 96, 128, 16, 32, 32});
    x = inceptionModule(g, "i3b", x, {128, 128, 192, 32, 96, 64});
    x = g.addMaxPool("pool3", x, PoolAttrs{3, 3, 2, 2, 1, 1});

    x = inceptionModule(g, "i4a", x, {192, 96, 208, 16, 48, 64});
    x = inceptionModule(g, "i4b", x, {160, 112, 224, 24, 64, 64});
    x = inceptionModule(g, "i4c", x, {128, 128, 256, 24, 64, 64});
    x = inceptionModule(g, "i4d", x, {112, 144, 288, 32, 64, 64});
    x = inceptionModule(g, "i4e", x, {256, 160, 320, 32, 128, 128});
    x = g.addMaxPool("pool4", x, PoolAttrs{3, 3, 2, 2, 1, 1});

    x = inceptionModule(g, "i5a", x, {256, 160, 320, 32, 128, 128});
    x = inceptionModule(g, "i5b", x, {384, 192, 384, 48, 128, 128});

    x = g.addGlobalAvgPool("gap", x);
    x = g.addFlatten("flatten", x);
    x = g.addDropout("drop", x);
    x = g.addFullyConnected("fc1", x, 1000);
    g.addSoftmax("prob", x);

    g.validate();
    return g;
}

Graph
buildMlp(std::int64_t batch, const std::vector<std::int64_t> &widths)
{
    ACCPAR_REQUIRE(batch >= 1, "batch must be positive");
    ACCPAR_REQUIRE(widths.size() >= 2,
                   "an MLP needs at least two widths");
    Graph g("mlp");
    LayerId x = g.addInput("data", TensorShape(batch, widths.front()));
    for (std::size_t l = 1; l < widths.size(); ++l) {
        x = g.addFullyConnected("fc" + std::to_string(l), x, widths[l]);
        if (l + 1 < widths.size())
            x = g.addRelu("fc" + std::to_string(l) + "_relu", x);
    }
    g.validate();
    return g;
}

} // namespace accpar::models
