/**
 * @file
 * The unified model frontend: a registry of named model builders.
 *
 * Supersedes the ad-hoc free functions of models/zoo.h as the way to
 * obtain a model by name: `models::catalog().build(name, params)`
 * with string-keyed parameters (batch, and per-family shape knobs
 * like depth/heads/hidden for transformers), enumeration for
 * `accpar models`, and importer-backed entries registered at load
 * time. The zoo free functions remain as thin wrappers for one
 * release; new code should go through the catalog.
 */

#ifndef ACCPAR_MODELS_CATALOG_H
#define ACCPAR_MODELS_CATALOG_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace accpar::models {

/**
 * String-keyed build parameters ("batch=512", "depth=12"). Keys are
 * model-defined; unknown keys are rejected at build time so a typoed
 * `--param dept=12` cannot silently build the default model.
 */
class ModelParams
{
  public:
    ModelParams() = default;

    /** Parses repeated "key=value" tokens (CLI --param occurrences);
     *  ConfigError on a token without '=' or a duplicate key. */
    static ModelParams fromKeyValues(
        const std::vector<std::string> &pairs);

    /** Sets or overwrites one parameter. */
    void set(const std::string &key, std::string value);

    bool has(const std::string &key) const;
    std::optional<std::string> get(const std::string &key) const;

    /** Integer value of @p key or @p fallback; ConfigError on
     *  non-numeric input. */
    std::int64_t getIntOr(const std::string &key,
                          std::int64_t fallback) const;

    /** All parameters, key-sorted (the map order). */
    const std::map<std::string, std::string> &values() const
    {
        return _values;
    }

    bool empty() const { return _values.empty(); }

    /** Canonical "k1=v1,k2=v2" rendering (key-sorted). */
    std::string toString() const;

  private:
    std::map<std::string, std::string> _values;
};

/** One catalog entry. */
struct ModelEntry
{
    /** Lowercase unique name ("vgg16", "bert-base", ...). */
    std::string name;
    /** Family tag for listings: "cnn", "mlp", "transformer",
     *  "imported". */
    std::string family;
    /** One-line description for `accpar models`. */
    std::string description;
    /** Parameter keys this entry understands (empty for imported
     *  entries; built-ins always include "batch"). */
    std::vector<std::string> params;
    /** Builds the model graph from validated parameters. */
    std::function<graph::Graph(const ModelParams &)> build;
};

/** The model registry. */
class ModelCatalog
{
  public:
    /** Registers an entry; ConfigError on a duplicate name. */
    void add(ModelEntry entry);

    /**
     * Registers an importer-backed entry: building @p name loads
     * @p path through models::importModel (the "batch" parameter is
     * rejected — imported files carry their own shapes). The file is
     * read at build time, not registration time.
     */
    void registerImportFile(const std::string &name,
                            const std::string &path);

    bool contains(const std::string &name) const;

    /** Entry lookup; ConfigError for unknown names (message lists the
     *  catalog). */
    const ModelEntry &entry(const std::string &name) const;

    /**
     * Builds @p name. Rejects parameter keys the entry does not
     * declare; every built-in entry accepts "batch" (imported entries
     * take no parameters — the file carries its own shapes).
     */
    graph::Graph build(const std::string &name,
                       const ModelParams &params = {}) const;

    /** All entries in registration order (builtins first). */
    const std::vector<ModelEntry> &entries() const { return _entries; }

    /** All names in registration order. */
    std::vector<std::string> names() const;

  private:
    std::vector<ModelEntry> _entries;
    std::map<std::string, std::size_t> _index;
};

/**
 * The process-wide catalog, populated with the built-in zoo (paper
 * CNNs, GoogLeNet, MLP, transformer family) on first use. Not
 * synchronized: register additional entries from one thread before
 * concurrent planning starts.
 */
ModelCatalog &catalog();

} // namespace accpar::models

#endif // ACCPAR_MODELS_CATALOG_H
