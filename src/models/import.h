/**
 * @file
 * The unified shapes-only model importer.
 *
 * Three on-disk formats converge on one entry point, importModel():
 *
 *  - `.dot` — the loadable Graphviz format graph::toDot emits. Every
 *    node carries `accpar_op` / `accpar_name` / `accpar_attrs`
 *    attributes and edges appear in operand order, so an
 *    export/import round trip reconstructs the exact graph and plans
 *    byte-identically. Foreign DOT files without the accpar_*
 *    attributes are rejected with a diagnostic, not mis-imported.
 *
 *  - ONNX-as-JSON — a minimal shapes-only subset of the ONNX
 *    ModelProto rendered as JSON (the output of
 *    `onnx.printable_graph`-style JSON dumps): `graph.input` value
 *    infos give the data input shape, `graph.initializer` entries
 *    give weight dims (only `name` and `dims` are read — no tensor
 *    payloads), and `graph.node` entries give the operator DAG.
 *    Supported op_types: Conv, Gemm, MatMul, MaxPool, AveragePool,
 *    GlobalAveragePool, Relu, BatchNormalization, LRN, Dropout, Add,
 *    Concat, Flatten, Softmax. Anything else is a diagnostic — the
 *    importer never silently drops an operator.
 *
 *  - the native JSON model description of models/model_io.h,
 *    unchanged.
 *
 * Dispatch is by content, not just extension: `.dot` files go to the
 * DOT parser; `.json` files go to the ONNX reader when the document
 * has a "graph" object and to the native reader otherwise.
 *
 * Each importer has a throwing form (ConfigError carrying the first
 * diagnostic) and a sink form that collects every finding (DOT:
 * ADOT01..ADOT03; ONNX: AONX01..AONX04 — see DESIGN.md §9) and
 * returns std::nullopt on error. Successfully built graphs are run
 * through the graph linter, so an imported model satisfies every
 * structural invariant the solvers assume.
 */

#ifndef ACCPAR_MODELS_IMPORT_H
#define ACCPAR_MODELS_IMPORT_H

#include <optional>
#include <string>

#include "analysis/diagnostic.h"
#include "graph/graph.h"
#include "util/json.h"

namespace accpar::models {

/** Builds a graph from DOT text in the graph::toDot dialect. */
graph::Graph importDot(const std::string &text);

/** Diagnostic-collecting variant (codes ADOT01..ADOT03). */
std::optional<graph::Graph> importDot(const std::string &text,
                                      analysis::DiagnosticSink &sink);

/** Builds a graph from a parsed ONNX-as-JSON document. */
graph::Graph importOnnxJson(const util::Json &doc);

/** Diagnostic-collecting variant (codes AONX01..AONX04). */
std::optional<graph::Graph>
importOnnxJson(const util::Json &doc, analysis::DiagnosticSink &sink);

/**
 * Reads and builds a model from @p path, dispatching on format (see
 * the file comment). Throws ConfigError on malformed input.
 */
graph::Graph importModel(const std::string &path);

/** Diagnostic-collecting variant of importModel. */
std::optional<graph::Graph>
importModel(const std::string &path, analysis::DiagnosticSink &sink);

} // namespace accpar::models

#endif // ACCPAR_MODELS_IMPORT_H
