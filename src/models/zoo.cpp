#include "models/zoo.h"

#include "models/catalog.h"

namespace accpar::models {

std::vector<std::string>
modelNames()
{
    return {"lenet",    "alexnet",  "vgg11",    "vgg13",   "vgg16",
            "vgg19",    "resnet18", "resnet34", "resnet50"};
}

graph::Graph
buildModel(const std::string &name, std::int64_t batch)
{
    ModelParams params;
    params.set("batch", std::to_string(batch));
    return catalog().build(name, params);
}

} // namespace accpar::models
