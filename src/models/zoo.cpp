#include "models/zoo.h"

#include "util/error.h"
#include "util/string_util.h"

namespace accpar::models {

std::vector<std::string>
modelNames()
{
    return {"lenet",    "alexnet",  "vgg11",    "vgg13",   "vgg16",
            "vgg19",    "resnet18", "resnet34", "resnet50"};
}

graph::Graph
buildModel(const std::string &name, std::int64_t batch)
{
    const std::string key = util::toLower(util::trim(name));
    if (key == "lenet")
        return buildLenet(batch);
    if (key == "alexnet")
        return buildAlexnet(batch);
    if (key == "vgg11")
        return buildVgg(11, batch);
    if (key == "vgg13")
        return buildVgg(13, batch);
    if (key == "vgg16")
        return buildVgg(16, batch);
    if (key == "vgg19")
        return buildVgg(19, batch);
    if (key == "resnet18")
        return buildResnet(18, batch);
    if (key == "resnet34")
        return buildResnet(34, batch);
    if (key == "resnet50")
        return buildResnet(50, batch);
    if (key == "googlenet")
        return buildGooglenet(batch);
    throw util::ConfigError("unknown model name: " + name);
}

} // namespace accpar::models
