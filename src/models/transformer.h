/**
 * @file
 * Transformer-family models (shapes-only, FC-dominated).
 *
 * Token positions are folded into the batch dimension (N = batch * seq,
 * C = hidden, spatial 1x1), so every projection is a FullyConnected
 * layer and the partition search sees the B / D_i / D_o structure the
 * paper's Tables 4-6 describe. Each encoder block is built from the
 * graph vocabulary the condensation understands:
 *
 *   x ── qkv FC (H -> 3H) ── per-head mixing FCs (3H -> H/heads,
 *        `heads` parallel branches, softmax in each) ── Concat ──
 *        proj FC (H -> H) ── Dropout ──┐
 *   └──────────────── residual ────── Add
 *   followed by the MLP:  fc1 (H -> r*H) ── ReLU ── fc2 (r*H -> H)
 *        ── Dropout ── Add (second residual)
 *
 * Modeling notes (documented approximations): the weightless
 * softmax(QK^T)V mixing is represented by the small per-head FCs so
 * the multi-head parallel region is visible to the partition search;
 * there is no slice operator, so each head FC consumes the full QKV
 * tensor. Embedding lookups are represented by an input projection
 * FC. Weight totals land within ~25% of the published architectures,
 * and the fork/join nesting (heads inside a residual) is exactly the
 * §5.2 structure the chain decomposition recognizes.
 */

#ifndef ACCPAR_MODELS_TRANSFORMER_H
#define ACCPAR_MODELS_TRANSFORMER_H

#include <cstdint>

#include "graph/graph.h"

namespace accpar::models {

/** Shape parameters of one transformer stack. */
struct TransformerConfig
{
    /** Sequences per step; tokens = batch * seq. */
    std::int64_t batch = 32;
    std::int64_t seq = 128;
    std::int64_t hidden = 768;
    std::int64_t depth = 12;
    std::int64_t heads = 12;
    /** MLP expansion ratio (4 in BERT/GPT-2). */
    std::int64_t mlpRatio = 4;
    /**
     * Output vocabulary of the LM head; 0 means a pooled
     * classification head (BERT-style) instead of a decoder head.
     */
    std::int64_t vocab = 0;
};

/** Builds an encoder/decoder stack named @p name from @p config. */
graph::Graph buildTransformer(const std::string &name,
                              const TransformerConfig &config);

/** BERT-base: depth 12, hidden 768, 12 heads, classification head. */
graph::Graph buildBertBase(std::int64_t batch);

/** BERT-large: depth 24, hidden 1024, 16 heads. */
graph::Graph buildBertLarge(std::int64_t batch);

/** GPT-style decoder: depth 12, hidden 768, LM head over 50257
 *  tokens. */
graph::Graph buildGptDecoder(std::int64_t batch);

} // namespace accpar::models

#endif // ACCPAR_MODELS_TRANSFORMER_H
