/**
 * @file
 * Accelerator groups: multisets of boards that act as one side of a
 * recursive bi-partition. A group aggregates compute density and link
 * bandwidth of its members — the "effective bandwidth between accelerator
 * groups" the paper parameterizes the search with (§5).
 */

#ifndef ACCPAR_HW_GROUP_H
#define ACCPAR_HW_GROUP_H

#include <string>
#include <vector>

#include "hw/accelerator.h"
#include "util/units.h"

namespace accpar::hw {

/** A run of identical boards inside a group. */
struct GroupSlice
{
    AcceleratorSpec spec;
    int count = 0;
};

/**
 * How a group's member links combine into the effective inter-group
 * bandwidth of Eq. 7. SumOfLinks (the default) assumes every member
 * drives its own link concurrently (full-bisection hierarchy);
 * SingleLink is the pessimistic sensitivity case where one board-pair
 * link carries each inter-group exchange.
 */
enum class LinkAggregation { SumOfLinks, SingleLink };

/**
 * A multiset of accelerator boards. Groups are the unit the partitioning
 * algorithm reasons about: at every hierarchy level a group is split in
 * two and the two halves exchange tensors over their aggregated links.
 */
class AcceleratorGroup
{
  public:
    AcceleratorGroup() = default;

    /** Group of @p count identical boards. */
    AcceleratorGroup(const AcceleratorSpec &spec, int count);

    /** Group from explicit slices (validated, merged by spec name). */
    explicit AcceleratorGroup(std::vector<GroupSlice> slices);

    /** Number of boards. */
    int size() const;

    /** True when all boards share one spec. */
    bool homogeneous() const { return _slices.size() <= 1; }

    /** Aggregate compute density: sum of member densities. */
    util::FlopsPerSecond computeDensity() const;

    /** Effective network bandwidth per the link aggregation policy. */
    util::BytesPerSecond linkBandwidth() const;

    /** Sets the link aggregation policy (inherited by split halves). */
    void setLinkAggregation(LinkAggregation aggregation);
    LinkAggregation linkAggregation() const { return _aggregation; }

    /** Aggregate memory bandwidth: sum of member HBM rates. */
    util::BytesPerSecond memoryBandwidth() const;

    /** Aggregate memory capacity. */
    util::Bytes memoryCapacity() const;

    const std::vector<GroupSlice> &slices() const { return _slices; }

    /**
     * Splits the group for the next hierarchy level.
     * Heterogeneous groups split by board type (first slice vs the rest),
     * mirroring the paper's TPU-v2-group / TPU-v3-group top split;
     * homogeneous groups halve, with odd sizes splitting (n+1)/2 vs n/2.
     * Requires size() >= 2.
     */
    std::pair<AcceleratorGroup, AcceleratorGroup> split() const;

    /** Short human-readable description, e.g. "128 x tpu-v2". */
    std::string toString() const;

  private:
    std::vector<GroupSlice> _slices;
    LinkAggregation _aggregation = LinkAggregation::SumOfLinks;
};

} // namespace accpar::hw

#endif // ACCPAR_HW_GROUP_H
