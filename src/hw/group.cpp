#include "hw/group.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace accpar::hw {

AcceleratorGroup::AcceleratorGroup(const AcceleratorSpec &spec, int count)
{
    ACCPAR_REQUIRE(count >= 1, "group needs at least one board");
    spec.validate();
    _slices.push_back(GroupSlice{spec, count});
}

AcceleratorGroup::AcceleratorGroup(std::vector<GroupSlice> slices)
{
    for (const GroupSlice &s : slices) {
        ACCPAR_REQUIRE(s.count >= 1, "group slice count must be positive");
        s.spec.validate();
        bool merged = false;
        for (GroupSlice &existing : _slices) {
            if (existing.spec.name == s.spec.name) {
                ACCPAR_REQUIRE(existing.spec == s.spec,
                               "two different specs share the name "
                                   << s.spec.name);
                existing.count += s.count;
                merged = true;
                break;
            }
        }
        if (!merged)
            _slices.push_back(s);
    }
    ACCPAR_REQUIRE(!_slices.empty(), "group cannot be empty");
}

int
AcceleratorGroup::size() const
{
    int total = 0;
    for (const GroupSlice &s : _slices)
        total += s.count;
    return total;
}

util::FlopsPerSecond
AcceleratorGroup::computeDensity() const
{
    util::FlopsPerSecond total = 0.0;
    for (const GroupSlice &s : _slices)
        total += s.count * s.spec.computeDensity;
    return total;
}

util::BytesPerSecond
AcceleratorGroup::linkBandwidth() const
{
    if (_aggregation == LinkAggregation::SingleLink) {
        util::BytesPerSecond slowest = _slices.front().spec.linkBandwidth;
        for (const GroupSlice &s : _slices)
            slowest = std::min(slowest, s.spec.linkBandwidth);
        return slowest;
    }
    util::BytesPerSecond total = 0.0;
    for (const GroupSlice &s : _slices)
        total += s.count * s.spec.linkBandwidth;
    return total;
}

void
AcceleratorGroup::setLinkAggregation(LinkAggregation aggregation)
{
    _aggregation = aggregation;
}

util::BytesPerSecond
AcceleratorGroup::memoryBandwidth() const
{
    util::BytesPerSecond total = 0.0;
    for (const GroupSlice &s : _slices)
        total += s.count * s.spec.memoryBandwidth;
    return total;
}

util::Bytes
AcceleratorGroup::memoryCapacity() const
{
    util::Bytes total = 0.0;
    for (const GroupSlice &s : _slices)
        total += s.count * s.spec.memoryCapacity;
    return total;
}

std::pair<AcceleratorGroup, AcceleratorGroup>
AcceleratorGroup::split() const
{
    ACCPAR_REQUIRE(size() >= 2, "cannot split a group of size "
                                    << size());
    if (!homogeneous()) {
        // Split by board type: first slice vs the remaining slices.
        AcceleratorGroup left(_slices.front().spec, _slices.front().count);
        AcceleratorGroup right(std::vector<GroupSlice>(
            _slices.begin() + 1, _slices.end()));
        left._aggregation = _aggregation;
        right._aggregation = _aggregation;
        return {left, right};
    }
    const GroupSlice &s = _slices.front();
    // Odd sizes split unevenly; the ratio solver balances work against
    // the asymmetric aggregate rates.
    const int left_count = (s.count + 1) / 2;
    AcceleratorGroup left(s.spec, left_count);
    AcceleratorGroup right(s.spec, s.count - left_count);
    left._aggregation = _aggregation;
    right._aggregation = _aggregation;
    return {left, right};
}

std::string
AcceleratorGroup::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < _slices.size(); ++i) {
        if (i)
            os << " + ";
        os << _slices[i].count << " x " << _slices[i].spec.name;
    }
    return os.str();
}

} // namespace accpar::hw
