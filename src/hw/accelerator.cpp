#include "hw/accelerator.h"

#include "util/error.h"

namespace accpar::hw {

void
AcceleratorSpec::validate() const
{
    ACCPAR_REQUIRE(!name.empty(), "accelerator needs a name");
    ACCPAR_REQUIRE(computeDensity > 0.0,
                   "accelerator " << name << ": compute density must be "
                                  << "positive");
    ACCPAR_REQUIRE(memoryCapacity > 0.0,
                   "accelerator " << name << ": memory capacity must be "
                                  << "positive");
    ACCPAR_REQUIRE(memoryBandwidth > 0.0,
                   "accelerator " << name << ": memory bandwidth must be "
                                  << "positive");
    ACCPAR_REQUIRE(linkBandwidth > 0.0,
                   "accelerator " << name << ": link bandwidth must be "
                                  << "positive");
}

AcceleratorSpec
tpuV2()
{
    return makeAccelerator("tpu-v2", 180.0, 64.0, 2400.0, 8.0);
}

AcceleratorSpec
tpuV3()
{
    return makeAccelerator("tpu-v3", 420.0, 128.0, 4800.0, 16.0);
}

AcceleratorSpec
makeAccelerator(const std::string &name, double tflops, double mem_gb,
                double mem_gbps, double link_gbit)
{
    AcceleratorSpec spec;
    spec.name = name;
    spec.computeDensity = util::teraFlopsPerSecond(tflops);
    spec.memoryCapacity = util::gbyte(mem_gb);
    spec.memoryBandwidth = util::gbytePerSecond(mem_gbps);
    spec.linkBandwidth = util::gbitPerSecond(link_gbit);
    spec.validate();
    return spec;
}

} // namespace accpar::hw
