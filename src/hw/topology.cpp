#include "hw/topology.h"

#include "hw/hierarchy.h"
#include "util/error.h"
#include "util/string_util.h"

namespace accpar::hw {

namespace {

double
parseNumber(const std::string &token, const std::string &what)
{
    // Locale-independent (ALINT10): whole-string parse, no LC_NUMERIC.
    const std::optional<double> out = util::parseDouble(token);
    if (!out)
        throw util::ConfigError("bad " + what + " '" + token +
                                "' in array spec");
    return *out;
}

GroupSlice
parseSlice(const std::string &text)
{
    const std::vector<std::string> fields = util::split(text, ':');
    ACCPAR_REQUIRE(fields.size() == 2 || fields.size() == 6,
                   "array slice '" << text
                                   << "' must be name:count or "
                                      "name:count:tflops:mem_gb:"
                                      "mem_gbps:link_gbit");
    const std::string name = util::trim(fields[0]);
    const int count =
        static_cast<int>(parseNumber(fields[1], "count"));
    ACCPAR_REQUIRE(count >= 1, "array slice count must be positive");

    if (fields.size() == 2) {
        if (name == "tpu-v2")
            return GroupSlice{tpuV2(), count};
        if (name == "tpu-v3")
            return GroupSlice{tpuV3(), count};
        throw util::ConfigError(
            "unknown accelerator '" + name +
            "' (built-ins: tpu-v2, tpu-v3; custom slices need the "
            "6-field form)");
    }
    return GroupSlice{makeAccelerator(name,
                                      parseNumber(fields[2], "tflops"),
                                      parseNumber(fields[3], "mem_gb"),
                                      parseNumber(fields[4],
                                                  "mem_gbps"),
                                      parseNumber(fields[5],
                                                  "link_gbit")),
                      count};
}

} // namespace

AcceleratorGroup
parseArraySpec(const std::string &spec)
{
    const std::string text = util::trim(spec);
    ACCPAR_REQUIRE(!text.empty(), "empty array spec");
    if (util::toLower(text) == "hetero")
        return heterogeneousTpuArray();
    if (util::toLower(text) == "homo")
        return homogeneousTpuV3Array();

    std::vector<GroupSlice> slices;
    for (const std::string &part : util::split(text, '+'))
        slices.push_back(parseSlice(util::trim(part)));
    return AcceleratorGroup(slices);
}

} // namespace accpar::hw
