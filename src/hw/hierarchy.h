/**
 * @file
 * The recursive bi-partition hierarchy over an accelerator array.
 *
 * AccPar (like HyPar) partitions hierarchically: the array splits into two
 * groups, the layer-wise search runs between them, and the procedure
 * recurses inside each group (§5.1). The hierarchy is a binary tree whose
 * leaves are single boards; internal nodes are the group pairs a solver
 * visits.
 */

#ifndef ACCPAR_HW_HIERARCHY_H
#define ACCPAR_HW_HIERARCHY_H

#include <optional>
#include <string>
#include <vector>

#include "hw/group.h"

namespace accpar::hw {

/** Index of a node inside a Hierarchy. */
using NodeId = int;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** One node of the bi-partition tree. */
struct HierarchyNode
{
    AcceleratorGroup group;
    NodeId left = kInvalidNode;
    NodeId right = kInvalidNode;
    /** Distance from the root (root is level 0). */
    int level = 0;

    bool isLeaf() const { return left == kInvalidNode; }
};

/**
 * A fully-expanded bi-partition tree of an accelerator array.
 */
class Hierarchy
{
  public:
    /**
     * Builds the tree by recursively splitting @p array until singleton
     * groups remain (see AcceleratorGroup::split for the split rule).
     */
    explicit Hierarchy(const AcceleratorGroup &array);

    NodeId root() const { return _root; }
    const HierarchyNode &node(NodeId id) const;
    std::size_t nodeCount() const { return _nodes.size(); }

    /** Number of internal (pair) levels, e.g. 8 for a 256-board array. */
    int levelCount() const { return _levels; }

    /** All internal nodes, parents before children. */
    std::vector<NodeId> internalNodes() const;

    /** Renders an indented outline of the tree (for logs/examples). */
    std::string toString() const;

  private:
    friend class HierarchyBuilder;
    Hierarchy() = default;

    NodeId build(const AcceleratorGroup &group, int level);

    std::vector<HierarchyNode> _nodes;
    NodeId _root = kInvalidNode;
    int _levels = 0;
};

/**
 * One validation finding of a HierarchyBuilder::build call. The hw
 * layer cannot depend on the analysis subsystem, so defects are plain
 * values; codes are stable and documented in DESIGN.md §9 (AG010
 * empty/invalid device subset, AG011 duplicate device, AG012
 * degenerate level).
 */
struct HierarchyDefect
{
    /** Stable code: "AG010", "AG011", or "AG012". */
    std::string code;
    /** Where: "leaf 3", "node 1", "root". */
    std::string location;
    /** What is wrong. */
    std::string message;

    /** Renders as "AG011 at node 1: …". */
    std::string toString() const;
};

/**
 * Constructs an explicit bi-partition tree over a device table instead
 * of deriving one from AcceleratorGroup::split. This is how the outer
 * search (src/search) materializes mutated hierarchy candidates: every
 * tree shape it proposes goes through build(), which validates the
 * description and reports defects as stable diagnostics instead of
 * asserting, so an ill-formed candidate can never crash the search or
 * produce a malformed Hierarchy.
 *
 * Usage: describe the tree bottom-up with leaf()/internal() (both
 * return node references), then call build(root). Checks:
 *
 *   AG010  a leaf names no valid device (out-of-range id), i.e. the
 *          subtree's device subset would be empty
 *   AG011  one device appears in more than one leaf of the tree
 *   AG012  degenerate level: an internal node whose two child
 *          references are invalid, identical, or already claimed by
 *          another parent (a single-child or shared-child "pair")
 *
 * On success the resulting Hierarchy stores nodes in pre-order (every
 * parent precedes its children, matching Hierarchy(array)), each node
 * carrying the AcceleratorGroup of its subtree's devices merged in
 * device-id order and inheriting the builder's link aggregation.
 */
class HierarchyBuilder
{
  public:
    /** The device table: spec of board i at index i. */
    explicit HierarchyBuilder(
        std::vector<AcceleratorSpec> devices,
        LinkAggregation aggregation = LinkAggregation::SumOfLinks);

    /** Device table of the flattened @p array, slice-major (device ids
     *  0..n-1 run through slice 0 first, then slice 1, …). */
    explicit HierarchyBuilder(const AcceleratorGroup &array);

    /** Adds a leaf holding device @p deviceId; returns its reference. */
    int leaf(int deviceId);

    /** Adds an internal node over two earlier nodes; returns its
     *  reference. */
    int internal(int left, int right);

    std::size_t deviceCount() const { return _devices.size(); }

    /**
     * Validates the tree rooted at @p root and builds the Hierarchy.
     * On any defect, appends findings to @p defects and returns
     * std::nullopt; never throws on a malformed description.
     */
    std::optional<Hierarchy>
    build(int root, std::vector<HierarchyDefect> &defects) const;

  private:
    struct ProtoNode
    {
        int device = -1; ///< leaf payload; -1 for internal nodes
        int left = -1;
        int right = -1;
    };

    std::vector<AcceleratorSpec> _devices;
    LinkAggregation _aggregation = LinkAggregation::SumOfLinks;
    std::vector<ProtoNode> _protos;
};

/** The paper's Figure 5 array: 128 TPU-v2 boards + 128 TPU-v3 boards. */
AcceleratorGroup heterogeneousTpuArray();

/** The paper's Figure 6 array: 128 TPU-v3 boards. */
AcceleratorGroup homogeneousTpuV3Array();

/**
 * A heterogeneous array with @p levels bi-partition levels for the
 * Figure 8 sweep: 2^(levels-1) boards of each TPU type.
 */
AcceleratorGroup heterogeneousTpuArrayForLevels(int levels);

} // namespace accpar::hw

#endif // ACCPAR_HW_HIERARCHY_H
