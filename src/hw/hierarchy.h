/**
 * @file
 * The recursive bi-partition hierarchy over an accelerator array.
 *
 * AccPar (like HyPar) partitions hierarchically: the array splits into two
 * groups, the layer-wise search runs between them, and the procedure
 * recurses inside each group (§5.1). The hierarchy is a binary tree whose
 * leaves are single boards; internal nodes are the group pairs a solver
 * visits.
 */

#ifndef ACCPAR_HW_HIERARCHY_H
#define ACCPAR_HW_HIERARCHY_H

#include <string>
#include <vector>

#include "hw/group.h"

namespace accpar::hw {

/** Index of a node inside a Hierarchy. */
using NodeId = int;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** One node of the bi-partition tree. */
struct HierarchyNode
{
    AcceleratorGroup group;
    NodeId left = kInvalidNode;
    NodeId right = kInvalidNode;
    /** Distance from the root (root is level 0). */
    int level = 0;

    bool isLeaf() const { return left == kInvalidNode; }
};

/**
 * A fully-expanded bi-partition tree of an accelerator array.
 */
class Hierarchy
{
  public:
    /**
     * Builds the tree by recursively splitting @p array until singleton
     * groups remain (see AcceleratorGroup::split for the split rule).
     */
    explicit Hierarchy(const AcceleratorGroup &array);

    NodeId root() const { return _root; }
    const HierarchyNode &node(NodeId id) const;
    std::size_t nodeCount() const { return _nodes.size(); }

    /** Number of internal (pair) levels, e.g. 8 for a 256-board array. */
    int levelCount() const { return _levels; }

    /** All internal nodes, parents before children. */
    std::vector<NodeId> internalNodes() const;

    /** Renders an indented outline of the tree (for logs/examples). */
    std::string toString() const;

  private:
    NodeId build(const AcceleratorGroup &group, int level);

    std::vector<HierarchyNode> _nodes;
    NodeId _root = kInvalidNode;
    int _levels = 0;
};

/** The paper's Figure 5 array: 128 TPU-v2 boards + 128 TPU-v3 boards. */
AcceleratorGroup heterogeneousTpuArray();

/** The paper's Figure 6 array: 128 TPU-v3 boards. */
AcceleratorGroup homogeneousTpuV3Array();

/**
 * A heterogeneous array with @p levels bi-partition levels for the
 * Figure 8 sweep: 2^(levels-1) boards of each TPU type.
 */
AcceleratorGroup heterogeneousTpuArrayForLevels(int levels);

} // namespace accpar::hw

#endif // ACCPAR_HW_HIERARCHY_H
