/**
 * @file
 * Textual array specifications, used by the command-line tool and the
 * examples to describe accelerator arrays without code.
 *
 * Grammar:
 *   spec    := "hetero" | "homo" | slice ("+" slice)*
 *   slice   := name ":" count
 *            | name ":" count ":" tflops ":" mem_gb ":" mem_gbps
 *              ":" link_gbit          (defines a custom accelerator)
 *   name    := "tpu-v2" | "tpu-v3" | custom identifier
 *
 * Examples: "hetero", "tpu-v3:128", "tpu-v2:96+tpu-v3:32",
 * "edge:16:45:16:600:4+tpu-v3:8".
 */

#ifndef ACCPAR_HW_TOPOLOGY_H
#define ACCPAR_HW_TOPOLOGY_H

#include <string>

#include "hw/group.h"

namespace accpar::hw {

/** Parses an array specification; throws ConfigError on bad input. */
AcceleratorGroup parseArraySpec(const std::string &spec);

} // namespace accpar::hw

#endif // ACCPAR_HW_TOPOLOGY_H
