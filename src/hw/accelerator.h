/**
 * @file
 * Accelerator specifications.
 *
 * The paper models an accelerator board by four scalars (Table 7): peak
 * compute density c_i (FLOP/s), HBM capacity, HBM bandwidth, and the
 * network data rate b_i of its links. TPU-v2 and TPU-v3 boards are
 * built in with the paper's §6.1 numbers.
 */

#ifndef ACCPAR_HW_ACCELERATOR_H
#define ACCPAR_HW_ACCELERATOR_H

#include <string>

#include "util/units.h"

namespace accpar::hw {

/** Static description of one accelerator board. */
struct AcceleratorSpec
{
    std::string name;
    /** Peak compute density c_i (FLOP per second). */
    util::FlopsPerSecond computeDensity = 0.0;
    /** On-board memory capacity in bytes. */
    util::Bytes memoryCapacity = 0.0;
    /** On-board memory bandwidth in bytes per second. */
    util::BytesPerSecond memoryBandwidth = 0.0;
    /** Network link data rate b_i in bytes per second. */
    util::BytesPerSecond linkBandwidth = 0.0;

    bool operator==(const AcceleratorSpec &other) const = default;

    /** Validates that all rates are positive; throws ConfigError. */
    void validate() const;
};

/**
 * TPU-v2 board: 180 TFLOPS, 64 GB HBM at 2400 GB/s, 8 Gb/s network
 * (paper §6.1: 2 Gb/s per core x 4 chips... the paper sets the board
 * rate to 8 Gb/s).
 */
AcceleratorSpec tpuV2();

/** TPU-v3 board: 420 TFLOPS, 128 GB HBM at 4800 GB/s, 16 Gb/s network. */
AcceleratorSpec tpuV3();

/** Builds a custom spec from human-friendly units. */
AcceleratorSpec makeAccelerator(const std::string &name, double tflops,
                                double mem_gb, double mem_gbps,
                                double link_gbit);

} // namespace accpar::hw

#endif // ACCPAR_HW_ACCELERATOR_H
