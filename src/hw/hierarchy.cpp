#include "hw/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace accpar::hw {

Hierarchy::Hierarchy(const AcceleratorGroup &array)
{
    ACCPAR_REQUIRE(array.size() >= 2,
                   "a hierarchy needs at least two boards, got "
                       << array.size());
    _root = build(array, 0);
}

NodeId
Hierarchy::build(const AcceleratorGroup &group, int level)
{
    const NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(HierarchyNode{group, kInvalidNode, kInvalidNode,
                                   level});
    if (group.size() > 1) {
        _levels = std::max(_levels, level + 1);
        auto [left, right] = group.split();
        // Children are created after the parent, so parents always precede
        // children in index order (used by internalNodes()).
        const NodeId l = build(left, level + 1);
        const NodeId r = build(right, level + 1);
        _nodes[id].left = l;
        _nodes[id].right = r;
    }
    return id;
}

const HierarchyNode &
Hierarchy::node(NodeId id) const
{
    ACCPAR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < _nodes.size(),
                   "invalid hierarchy node id " << id);
    return _nodes[id];
}

std::vector<NodeId>
Hierarchy::internalNodes() const
{
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (!_nodes[i].isLeaf())
            out.push_back(static_cast<NodeId>(i));
    return out;
}

std::string
Hierarchy::toString() const
{
    std::ostringstream os;
    for (const HierarchyNode &n : _nodes) {
        os << std::string(static_cast<std::size_t>(n.level) * 2, ' ')
           << (n.isLeaf() ? "- " : "+ ") << n.group.toString() << '\n';
    }
    return os.str();
}

AcceleratorGroup
heterogeneousTpuArray()
{
    return AcceleratorGroup({GroupSlice{tpuV2(), 128},
                             GroupSlice{tpuV3(), 128}});
}

AcceleratorGroup
homogeneousTpuV3Array()
{
    return AcceleratorGroup(tpuV3(), 128);
}

AcceleratorGroup
heterogeneousTpuArrayForLevels(int levels)
{
    ACCPAR_REQUIRE(levels >= 1 && levels <= 24,
                   "hierarchy levels out of range: " << levels);
    const int per_type = 1 << (levels - 1);
    return AcceleratorGroup({GroupSlice{tpuV2(), per_type},
                             GroupSlice{tpuV3(), per_type}});
}

} // namespace accpar::hw
