#include "hw/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace accpar::hw {

Hierarchy::Hierarchy(const AcceleratorGroup &array)
{
    ACCPAR_REQUIRE(array.size() >= 2,
                   "a hierarchy needs at least two boards, got "
                       << array.size());
    _root = build(array, 0);
}

NodeId
Hierarchy::build(const AcceleratorGroup &group, int level)
{
    const NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(HierarchyNode{group, kInvalidNode, kInvalidNode,
                                   level});
    if (group.size() > 1) {
        _levels = std::max(_levels, level + 1);
        auto [left, right] = group.split();
        // Children are created after the parent, so parents always precede
        // children in index order (used by internalNodes()).
        const NodeId l = build(left, level + 1);
        const NodeId r = build(right, level + 1);
        _nodes[id].left = l;
        _nodes[id].right = r;
    }
    return id;
}

const HierarchyNode &
Hierarchy::node(NodeId id) const
{
    ACCPAR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < _nodes.size(),
                   "invalid hierarchy node id " << id);
    return _nodes[id];
}

std::vector<NodeId>
Hierarchy::internalNodes() const
{
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (!_nodes[i].isLeaf())
            out.push_back(static_cast<NodeId>(i));
    return out;
}

std::string
Hierarchy::toString() const
{
    std::ostringstream os;
    for (const HierarchyNode &n : _nodes) {
        os << std::string(static_cast<std::size_t>(n.level) * 2, ' ')
           << (n.isLeaf() ? "- " : "+ ") << n.group.toString() << '\n';
    }
    return os.str();
}

std::string
HierarchyDefect::toString() const
{
    return code + " at " + location + ": " + message;
}

HierarchyBuilder::HierarchyBuilder(std::vector<AcceleratorSpec> devices,
                                   LinkAggregation aggregation)
    : _devices(std::move(devices)), _aggregation(aggregation)
{
}

HierarchyBuilder::HierarchyBuilder(const AcceleratorGroup &array)
    : _aggregation(array.linkAggregation())
{
    for (const GroupSlice &slice : array.slices())
        for (int i = 0; i < slice.count; ++i)
            _devices.push_back(slice.spec);
}

int
HierarchyBuilder::leaf(int deviceId)
{
    const int id = static_cast<int>(_protos.size());
    _protos.push_back(ProtoNode{deviceId, -1, -1});
    return id;
}

int
HierarchyBuilder::internal(int left, int right)
{
    const int id = static_cast<int>(_protos.size());
    _protos.push_back(ProtoNode{-1, left, right});
    return id;
}

namespace {

std::string
nodeLocation(const char *kind, int id)
{
    std::ostringstream os;
    os << kind << ' ' << id;
    return os.str();
}

} // namespace

std::optional<Hierarchy>
HierarchyBuilder::build(int root, std::vector<HierarchyDefect> &defects) const
{
    const int proto_count = static_cast<int>(_protos.size());
    if (root < 0 || root >= proto_count) {
        defects.push_back(HierarchyDefect{
            "AG010", "root",
            "root reference " + std::to_string(root) +
                " names no node; the hierarchy would hold no devices"});
        return std::nullopt;
    }

    // Validation walk. Children were necessarily created before their
    // parent (leaf()/internal() hand out increasing references), so a
    // child reference >= its parent's is ill-formed and rejecting it
    // also rules out cycles.
    std::vector<char> claimed(_protos.size(), 0);
    std::vector<char> device_seen(_devices.size(), 0);
    std::vector<int> stack{root};
    claimed[static_cast<std::size_t>(root)] = 1;
    int devices_in_tree = 0;
    while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        const ProtoNode &proto = _protos[static_cast<std::size_t>(id)];
        if (proto.left < 0 && proto.right < 0) {
            if (proto.device < 0 ||
                proto.device >= static_cast<int>(_devices.size())) {
                defects.push_back(HierarchyDefect{
                    "AG010", nodeLocation("leaf", id),
                    "device id " + std::to_string(proto.device) +
                        " is outside the table of " +
                        std::to_string(_devices.size()) +
                        " devices; the leaf's device subset is empty"});
            } else if (device_seen[static_cast<std::size_t>(
                           proto.device)]) {
                defects.push_back(HierarchyDefect{
                    "AG011", nodeLocation("leaf", id),
                    "device id " + std::to_string(proto.device) +
                        " already appears in another leaf"});
            } else {
                device_seen[static_cast<std::size_t>(proto.device)] = 1;
                ++devices_in_tree;
            }
            continue;
        }
        bool children_ok = true;
        for (const int child : {proto.left, proto.right}) {
            if (child < 0 || child >= id) {
                defects.push_back(HierarchyDefect{
                    "AG012", nodeLocation("node", id),
                    "child reference " + std::to_string(child) +
                        " does not name an earlier node; an internal "
                        "node must pair two existing subtrees"});
                children_ok = false;
            }
        }
        if (children_ok && proto.left == proto.right) {
            defects.push_back(HierarchyDefect{
                "AG012", nodeLocation("node", id),
                "both children reference node " +
                    std::to_string(proto.left) +
                    "; a level must split into two distinct subtrees"});
            children_ok = false;
        }
        if (!children_ok)
            continue;
        for (const int child : {proto.left, proto.right}) {
            if (claimed[static_cast<std::size_t>(child)]) {
                defects.push_back(HierarchyDefect{
                    "AG012", nodeLocation("node", id),
                    "child node " + std::to_string(child) +
                        " is already claimed by another parent"});
                continue;
            }
            claimed[static_cast<std::size_t>(child)] = 1;
            stack.push_back(child);
        }
    }
    if (defects.empty() && devices_in_tree < 2) {
        defects.push_back(HierarchyDefect{
            "AG010", "root",
            "a hierarchy needs at least two devices, tree holds " +
                std::to_string(devices_in_tree)});
    }
    if (!defects.empty())
        return std::nullopt;

    // Pre-order emission so parents precede children, matching
    // Hierarchy(array). Each node's group merges its subtree's devices
    // in ascending device-id order (the canonical slice order).
    Hierarchy hierarchy;
    struct Frame
    {
        int proto;
        int level;
        NodeId parent;
        bool isLeft;
    };
    std::vector<Frame> frames{Frame{root, 0, kInvalidNode, false}};
    // Device sets are small (≤ a few hundred); recompute per node.
    auto subtreeDevices = [this](int start) {
        std::vector<int> ids;
        std::vector<int> work{start};
        while (!work.empty()) {
            const ProtoNode &p =
                _protos[static_cast<std::size_t>(work.back())];
            work.pop_back();
            if (p.left < 0 && p.right < 0) {
                ids.push_back(p.device);
            } else {
                work.push_back(p.left);
                work.push_back(p.right);
            }
        }
        std::sort(ids.begin(), ids.end());
        return ids;
    };
    while (!frames.empty()) {
        const Frame frame = frames.back();
        frames.pop_back();
        std::vector<GroupSlice> slices;
        for (const int device : subtreeDevices(frame.proto))
            slices.push_back(
                GroupSlice{_devices[static_cast<std::size_t>(device)], 1});
        AcceleratorGroup group(std::move(slices));
        group.setLinkAggregation(_aggregation);
        const NodeId id = static_cast<NodeId>(hierarchy._nodes.size());
        hierarchy._nodes.push_back(HierarchyNode{
            std::move(group), kInvalidNode, kInvalidNode, frame.level});
        if (frame.parent != kInvalidNode) {
            HierarchyNode &parent =
                hierarchy._nodes[static_cast<std::size_t>(frame.parent)];
            (frame.isLeft ? parent.left : parent.right) = id;
        }
        const ProtoNode &proto =
            _protos[static_cast<std::size_t>(frame.proto)];
        if (proto.left >= 0) {
            hierarchy._levels =
                std::max(hierarchy._levels, frame.level + 1);
            // Push right first so the left child is emitted first
            // (stack order), matching the recursive builder.
            frames.push_back(Frame{proto.right, frame.level + 1, id, false});
            frames.push_back(Frame{proto.left, frame.level + 1, id, true});
        }
    }
    hierarchy._root = 0;
    return hierarchy;
}

AcceleratorGroup
heterogeneousTpuArray()
{
    return AcceleratorGroup({GroupSlice{tpuV2(), 128},
                             GroupSlice{tpuV3(), 128}});
}

AcceleratorGroup
homogeneousTpuV3Array()
{
    return AcceleratorGroup(tpuV3(), 128);
}

AcceleratorGroup
heterogeneousTpuArrayForLevels(int levels)
{
    ACCPAR_REQUIRE(levels >= 1 && levels <= 24,
                   "hierarchy levels out of range: " << levels);
    const int per_type = 1 << (levels - 1);
    return AcceleratorGroup({GroupSlice{tpuV2(), per_type},
                             GroupSlice{tpuV3(), per_type}});
}

} // namespace accpar::hw
