#include "service/plan_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "analysis/plan_verifier.h"
#include "core/certificate_io.h"
#include "core/plan_io.h"
#include "core/planner.h"
#include "hw/topology.h"
#include "models/catalog.h"
#include "models/model_io.h"
#include "search/annealing.h"
#include "strategies/registry.h"
#include "util/error.h"
#include "util/logging.h"

namespace accpar::service {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

util::Json
diagnosticsJson(const std::vector<analysis::Diagnostic> &diagnostics)
{
    analysis::DiagnosticSink sink;
    for (const analysis::Diagnostic &diagnostic : diagnostics)
        sink.report(diagnostic);
    return sink.renderJson();
}

} // namespace

PlanService::PlanService(const ServiceConfig &config)
    : _config(config),
      _cache(config.cacheEntries, config.cacheShards)
{
    ACCPAR_REQUIRE(config.workers >= 1,
                   "service needs at least one worker, got "
                       << config.workers);
    ACCPAR_REQUIRE(config.plannerJobs >= 0,
                   "plannerJobs must be >= 0, got "
                       << config.plannerJobs);
    _workers.reserve(static_cast<std::size_t>(config.workers));
    for (int i = 0; i < config.workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

PlanService::~PlanService()
{
    shutdown();
}

void
PlanService::shutdown()
{
    _draining.store(true, std::memory_order_release);
    {
        const util::LockGuard lock(_queueMutex);
        if (_stopWorkers)
            return;
        _stopWorkers = true;
    }
    _queueReady.notifyAll();
    for (std::thread &worker : _workers)
        if (worker.joinable())
            worker.join();
}

std::string
PlanService::handleLine(const std::string &line)
{
    auto parsed = parseRequest(line);
    if (const auto *error = std::get_if<ServiceError>(&parsed)) {
        _metrics.requestsTotal.fetch_add(1, std::memory_order_relaxed);
        _metrics.protocolErrors.fetch_add(1,
                                          std::memory_order_relaxed);
        _metrics.errors.fetch_add(1, std::memory_order_relaxed);
        return errorResponse(error->id, *error).dump();
    }
    return handle(std::get<ServiceRequest>(parsed)).dump();
}

util::Json
PlanService::handle(const ServiceRequest &request)
{
    _metrics.requestsTotal.fetch_add(1, std::memory_order_relaxed);
    switch (request.kind) {
      case RequestKind::Stats:
        _metrics.statsRequests.fetch_add(1,
                                         std::memory_order_relaxed);
        return okResponse(request.id, RequestKind::Stats,
                          statsPayload());
      case RequestKind::Shutdown:
        _metrics.shutdownRequests.fetch_add(1,
                                            std::memory_order_relaxed);
        ACCPAR_INFO("service: shutdown requested, draining");
        _draining.store(true, std::memory_order_release);
        return okResponse(request.id, RequestKind::Shutdown,
                          util::Json::Object{});
      case RequestKind::Plan:
        _metrics.planRequests.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestKind::Search:
        _metrics.searchRequests.fetch_add(1,
                                          std::memory_order_relaxed);
        break;
      case RequestKind::Validate:
        _metrics.validateRequests.fetch_add(1,
                                            std::memory_order_relaxed);
        break;
    }
    return enqueue(request);
}

util::Json
PlanService::enqueue(const ServiceRequest &request)
{
    auto job = std::make_unique<Job>();
    job->request = request;
    job->enqueued = Clock::now();
    double deadline = request.deadlineSeconds;
    if (deadline <= 0.0)
        deadline = _config.defaultDeadlineSeconds;
    if (deadline > 0.0)
        job->deadline =
            job->enqueued + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(deadline));
    std::future<util::Json> future = job->promise.get_future();

    {
        const util::LockGuard lock(_queueMutex);
        if (_draining.load(std::memory_order_acquire)) {
            _metrics.errors.fetch_add(1, std::memory_order_relaxed);
            return errorResponse(
                request.id,
                ServiceError{kErrShuttingDown,
                             "server is draining; request rejected"});
        }
        if (_queue.size() >= _config.maxQueue) {
            _metrics.queueRejected.fetch_add(
                1, std::memory_order_relaxed);
            _metrics.errors.fetch_add(1, std::memory_order_relaxed);
            return errorResponse(
                request.id,
                ServiceError{kErrQueueFull,
                             "admission queue is full (" +
                                 std::to_string(_config.maxQueue) +
                                 " pending requests)"});
        }
        _queue.push_back(std::move(job));
        _metrics.queueDepth.fetch_add(1, std::memory_order_relaxed);
    }
    _queueReady.notifyOne();
    return future.get();
}

void
PlanService::workerLoop()
{
    // Each worker owns its Planner: concurrent solves never share
    // mutable planner state, and the worker's cost cache stays warm
    // across the requests it serves.
    Planner planner;
    while (true) {
        std::unique_ptr<Job> job;
        {
            util::UniqueLock lock(_queueMutex);
            while (_queue.empty() && !_stopWorkers)
                _queueReady.wait(lock);
            if (_queue.empty()) {
                if (_stopWorkers)
                    return;
                continue;
            }
            job = std::move(_queue.front());
            _queue.pop_front();
            _metrics.queueDepth.fetch_sub(1,
                                          std::memory_order_relaxed);
        }
        util::Json response = process(*job, planner);
        job->promise.set_value(std::move(response));
    }
}

util::Json
PlanService::process(Job &job, Planner &planner)
{
    const ServiceRequest &request = job.request;
    if (job.deadline != Clock::time_point{} &&
        Clock::now() > job.deadline) {
        _metrics.deadlineExpired.fetch_add(1,
                                           std::memory_order_relaxed);
        util::Json response = errorResponse(
            request.id,
            ServiceError{kErrDeadline,
                         "deadline expired before planning started"});
        return finishResponse(std::move(response), job.enqueued);
    }

    util::Json response;
    try {
        switch (request.kind) {
          case RequestKind::Plan:
            response = executePlan(request, planner);
            break;
          case RequestKind::Search: {
            // Wall clock left before this job's deadline, for the
            // budget clamp. The expiry check above already ran, so a
            // set deadline has strictly positive time left (modulo
            // the microseconds since; floor at 1us so "deadline set"
            // is never confused with "no deadline").
            double remaining_ms = 0.0;
            if (job.deadline != Clock::time_point{})
                remaining_ms = std::max(
                    1e-3,
                    secondsBetween(Clock::now(), job.deadline) * 1e3);
            response = executeSearch(request, planner, remaining_ms);
            break;
          }
          default:
            response = executeValidate(request);
            break;
        }
    } catch (const std::exception &e) {
        response = errorResponse(
            request.id, ServiceError{kErrPlanFailed, e.what()});
    }
    return finishResponse(std::move(response), job.enqueued);
}

util::Json
PlanService::finishResponse(util::Json response,
                            Clock::time_point started)
{
    _metrics.latency.record(
        secondsBetween(started, Clock::now()));
    if (response.contains("ok") && !response.at("ok").asBool())
        _metrics.errors.fetch_add(1, std::memory_order_relaxed);
    return response;
}

util::Json
PlanService::executePlan(const ServiceRequest &request,
                         Planner &planner)
{
    // Phase 1: resolve the request's artifacts. Failures here are the
    // client's fault (unknown model, bad array spec): ASRV04.
    std::unique_ptr<PlanRequest> plan_request;
    try {
        graph::Graph model = [&] {
            if (request.modelDoc)
                return models::modelFromJson(*request.modelDoc);
            models::ModelParams params;
            for (const auto &[key, value] : request.params)
                params.set(key, value);
            if (!params.has("batch"))
                params.set("batch", std::to_string(request.batch));
            return models::catalog().build(request.modelName, params);
        }();
        hw::AcceleratorGroup array = hw::parseArraySpec(request.array);
        // Reject unknown strategy names before solving (and before the
        // cache, so a bad name can never be memoized).
        if (request.strategy != "custom")
            strategies::makeStrategy(request.strategy);
        plan_request = std::make_unique<PlanRequest>(std::move(model),
                                                     std::move(array));
        plan_request->strategy = request.strategy;
        plan_request->jobs = _config.plannerJobs;
        plan_request->options.verify = request.verify;
        plan_request->options.strict = request.strict;
        // Every solved plan carries its certificate fingerprint so
        // clients can match cached responses to audited certificate
        // files. Excluded from the canonical key: emission cannot
        // change the produced plan.
        plan_request->options.emitCertificate = true;
    } catch (const std::exception &e) {
        return errorResponse(request.id,
                             ServiceError{kErrBadField, e.what()});
    }

    const std::string key = planRequestCanonicalKey(*plan_request);
    if (std::optional<util::Json> payload = _cache.lookup(key)) {
        _metrics.cacheHits.fetch_add(1, std::memory_order_relaxed);
        util::Json response =
            okResponse(request.id, RequestKind::Plan, *payload);
        response["cached"] = true;
        return response;
    }
    _metrics.cacheMisses.fetch_add(1, std::memory_order_relaxed);

    // Phase 2: solve. Failures here (verifier rejection, solver
    // errors) are planning failures: ASRV07, raised by process().
    // Solved through planBatch so result-cache misses ride the same
    // shared-problem engine as sweeps (and a future multi-request
    // protocol batches for free).
    const PlanResult result =
        planner.planBatch({*plan_request}).front();
    const hw::Hierarchy hierarchy(plan_request->array);

    util::Json payload = util::Json::Object{};
    payload["strategy"] = result.strategy;
    payload["model"] = result.model;
    payload["root_cost"] = result.rootCost;
    payload["plan_seconds"] = result.planSeconds;
    payload["plan"] = core::planToJson(result.plan, hierarchy);
    payload["diagnostics"] = diagnosticsJson(result.diagnostics);
    payload["certificate_fingerprint"] =
        result.certificate
            ? util::Json(core::certificateFingerprint(
                  core::certificateToJson(*result.certificate,
                                          hierarchy)))
            : util::Json();

    _cache.insert(key, payload);
    util::Json response =
        okResponse(request.id, RequestKind::Plan, payload);
    response["cached"] = false;
    return response;
}

util::Json
PlanService::executeSearch(const ServiceRequest &request,
                           Planner &planner,
                           double remainingDeadlineMs)
{
    // Budget first: a search without a usable budget is rejected
    // before any artifact work (ASRV09). The clamp also caps the run
    // by the request's remaining deadline.
    const search::EffectiveBudget budget = search::clampBudget(
        static_cast<int>(std::min<std::int64_t>(
            request.budgetIters,
            std::numeric_limits<int>::max())),
        request.budgetMs, remainingDeadlineMs);
    if (!budget.usable)
        return errorResponse(
            request.id,
            ServiceError{kErrNoBudget,
                         "search request needs budget_iters or "
                         "budget_ms > 0"});

    // Phase 1: resolve artifacts under the same rules as plan
    // requests (failures are the client's fault: ASRV04).
    std::unique_ptr<PlanRequest> plan_request;
    try {
        graph::Graph model = [&] {
            if (request.modelDoc)
                return models::modelFromJson(*request.modelDoc);
            models::ModelParams params;
            for (const auto &[key, value] : request.params)
                params.set(key, value);
            if (!params.has("batch"))
                params.set("batch", std::to_string(request.batch));
            return models::catalog().build(request.modelName, params);
        }();
        hw::AcceleratorGroup array = hw::parseArraySpec(request.array);
        if (request.strategy != "accpar" &&
            request.strategy != "custom")
            throw util::ConfigError(
                "outer search supports strategies 'accpar' and "
                "'custom' only, got '" +
                request.strategy + "'");
        plan_request = std::make_unique<PlanRequest>(std::move(model),
                                                     std::move(array));
        plan_request->strategy = request.strategy;
        plan_request->jobs = _config.plannerJobs;
        plan_request->options.verify = request.verify;
        plan_request->options.strict = request.strict;
        plan_request->options.emitCertificate = true;
        plan_request->options.search.budgetIters = budget.budgetIters;
        plan_request->options.search.budgetMs = budget.budgetMs;
        plan_request->options.search.seed = request.seed;
    } catch (const std::exception &e) {
        return errorResponse(request.id,
                             ServiceError{kErrBadField, e.what()});
    }

    // Only iteration-budgeted, deadline-free searches may hit the
    // result cache: they are pure functions of the request (the
    // canonical key folds the search budget in). Wall-clock budgets
    // truncate nondeterministically, so caching them would serve one
    // run's luck as another run's answer.
    const std::string key = planRequestCanonicalKey(*plan_request);
    if (budget.cacheable) {
        if (std::optional<util::Json> payload = _cache.lookup(key)) {
            _metrics.cacheHits.fetch_add(1, std::memory_order_relaxed);
            util::Json response =
                okResponse(request.id, RequestKind::Search, *payload);
            response["cached"] = true;
            return response;
        }
        _metrics.cacheMisses.fetch_add(1, std::memory_order_relaxed);
    }

    // Phase 2: search + solve. Failures surface as ASRV07 via
    // process(). The plan's node ids index the winning hierarchy, so
    // serialization must use it, never the seed hierarchy.
    const PlanResult result =
        planner.planBatch({*plan_request}).front();
    ACCPAR_REQUIRE(result.searchedHierarchy && result.searchReport,
                   "search-enabled plan returned no searched "
                   "hierarchy");
    const hw::Hierarchy &hierarchy = *result.searchedHierarchy;
    const search::SearchReport &report = *result.searchReport;

    util::Json payload = util::Json::Object{};
    payload["strategy"] = result.strategy;
    payload["model"] = result.model;
    payload["root_cost"] = result.rootCost;
    payload["plan_seconds"] = result.planSeconds;
    payload["plan"] = core::planToJson(result.plan, hierarchy);
    payload["diagnostics"] = diagnosticsJson(result.diagnostics);
    payload["certificate_fingerprint"] =
        result.certificate
            ? util::Json(core::certificateFingerprint(
                  core::certificateToJson(*result.certificate,
                                          hierarchy)))
            : util::Json();
    payload["baseline_cost"] = report.baselineCost;
    payload["best_cost"] = report.bestCost;
    payload["search_iterations"] =
        static_cast<std::int64_t>(report.iterations);
    payload["search_improved"] = report.improvedOverBaseline();
    payload["hierarchy_signature"] = report.bestSignature;
    util::Json anytime{util::Json::Array{}};
    for (const search::AnytimePoint &point : report.anytime) {
        util::Json entry = util::Json::Object{};
        entry["iteration"] = static_cast<std::int64_t>(point.iteration);
        entry["best_cost"] = point.bestCost;
        anytime.push(std::move(entry));
    }
    payload["anytime"] = std::move(anytime);

    if (budget.cacheable)
        _cache.insert(key, payload);
    util::Json response =
        okResponse(request.id, RequestKind::Search, payload);
    response["cached"] = false;
    return response;
}

util::Json
PlanService::executeValidate(const ServiceRequest &request)
{
    analysis::DiagnosticSink sink;
    const std::optional<graph::Graph> model =
        models::modelFromJson(*request.modelDoc, sink);

    if (model && request.planDoc) {
        // Bad array specs are a request problem, not a finding about
        // the artifacts: report ASRV04 instead of a diagnostic.
        hw::AcceleratorGroup array;
        try {
            array = hw::parseArraySpec(request.array);
        } catch (const std::exception &e) {
            return errorResponse(request.id,
                                 ServiceError{kErrBadField, e.what()});
        }
        const hw::Hierarchy hierarchy(array);
        const std::optional<core::PartitionPlan> plan =
            core::planFromJson(*request.planDoc, hierarchy, sink);
        if (plan) {
            analysis::VerifyOptions options;
            try {
                options.cost = strategies::makeStrategy(
                                   request.strategy)
                                   ->costConfig();
            } catch (const util::ConfigError &) {
                options.checkCosts = false;
            }
            const core::PartitionProblem problem(*model);
            analysis::verifyPlan(problem, hierarchy, *plan, options,
                                 sink);
        }
    }
    sink.sort();

    util::Json payload = util::Json::Object{};
    payload["valid"] = !sink.failsStrict(request.strict);
    payload["diagnostics"] = sink.renderJson();
    return okResponse(request.id, RequestKind::Validate, payload);
}

util::Json
PlanService::statsPayload() const
{
    const ResultCacheStats cache_stats = _cache.stats();
    util::Json cache = util::Json::Object{};
    cache["entries"] = static_cast<std::int64_t>(cache_stats.entries);
    cache["capacity"] = static_cast<std::int64_t>(_cache.capacity());
    cache["shards"] = static_cast<std::int64_t>(_cache.shardCount());
    cache["hits"] = static_cast<std::int64_t>(cache_stats.hits);
    cache["misses"] = static_cast<std::int64_t>(cache_stats.misses);
    cache["insertions"] =
        static_cast<std::int64_t>(cache_stats.insertions);
    cache["evictions"] =
        static_cast<std::int64_t>(cache_stats.evictions);
    cache["hit_rate"] = cache_stats.hitRate();

    util::Json payload = util::Json::Object{};
    payload["metrics"] = _metrics.snapshot().toJson();
    payload["result_cache"] = std::move(cache);
    payload["workers"] = _config.workers;
    payload["planner_jobs"] = _config.plannerJobs;
    payload["queue_capacity"] =
        static_cast<std::int64_t>(_config.maxQueue);
    payload["draining"] = shutdownRequested();
    return payload;
}

std::string
PlanService::statsText() const
{
    const ResultCacheStats cache_stats = _cache.stats();
    std::string text = _metrics.snapshot().toText();
    text += "  cache entries:    " +
            std::to_string(cache_stats.entries) + " / " +
            std::to_string(_cache.capacity()) + " (" +
            std::to_string(cache_stats.evictions) + " evicted)\n";
    return text;
}

} // namespace accpar::service
