/**
 * @file
 * Sharded cross-request result cache for the planning service.
 *
 * Maps a canonical plan-request key (core::planRequestCanonicalKey) to
 * the fully rendered response payload, so a repeated query is answered
 * without re-running the hierarchical search. Keys are compared as full
 * strings — the canonical key is exact, so a hit is guaranteed to be
 * the byte-identical payload a fresh solve would have produced
 * (plans are deterministic for any jobs value).
 *
 * The table is split into independently locked shards (selected by key
 * hash) so concurrent workers rarely contend; each shard maintains its
 * own LRU list and evicts least-recently-used entries once the shard's
 * share of the global capacity is exceeded.
 */

#ifndef ACCPAR_SERVICE_RESULT_CACHE_H
#define ACCPAR_SERVICE_RESULT_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/json.h"
#include "util/sync.h"

namespace accpar::service {

/** Cache effectiveness counters. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Sharded LRU map of canonical request key -> response payload. */
class ResultCache
{
  public:
    /**
     * @p capacity  total entry budget across all shards (0 disables
     *              caching: every lookup misses, inserts are dropped).
     * @p shards    lock shards; clamped to [1, 64].
     */
    explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Returns the cached payload and refreshes its recency. */
    std::optional<util::Json> lookup(const std::string &key);

    /** Inserts (or refreshes) @p key; evicts LRU entries as needed. */
    void insert(const std::string &key, util::Json payload);

    ResultCacheStats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return _capacity; }
    std::size_t shardCount() const { return _shards.size(); }
    void clear();

  private:
    struct Entry
    {
        std::string key;
        util::Json payload;
    };

    struct Shard
    {
        mutable util::Mutex mutex{"ResultCache::Shard::mutex"};
        /** Front = most recently used. */
        std::list<Entry> lru ACCPAR_GUARDED_BY(mutex);
        std::unordered_map<std::string, std::list<Entry>::iterator>
            index ACCPAR_GUARDED_BY(mutex);
    };

    Shard &shardFor(const std::string &key);
    /** Evicts LRU entries past the shard budget (shard lock held). */
    void evictLocked(Shard &shard) ACCPAR_REQUIRES(shard.mutex);

    std::size_t _capacity;
    std::size_t _shardCapacity;
    std::vector<std::unique_ptr<Shard>> _shards;
    mutable std::atomic<std::uint64_t> _hits{0};
    mutable std::atomic<std::uint64_t> _misses{0};
    std::atomic<std::uint64_t> _insertions{0};
    std::atomic<std::uint64_t> _evictions{0};
    std::atomic<std::int64_t> _entries{0};
};

} // namespace accpar::service

#endif // ACCPAR_SERVICE_RESULT_CACHE_H
