/**
 * @file
 * Built-in metrics for the planning service.
 *
 * A Metrics registry aggregates what operators need to watch a running
 * `accpar serve`: request counts by kind and outcome, admission-queue
 * depth, result-cache effectiveness, and a latency histogram with
 * p50/p95/p99 read-outs. Everything is lock-free (atomic counters and
 * atomic histogram buckets) so recording from many worker and
 * connection threads never serializes the hot path; snapshots are
 * taken with relaxed loads and are allowed to be slightly torn across
 * counters (each counter is individually consistent). The one
 * cross-counter invariant — histogram buckets never lag the histogram
 * count — is enforced with a release/acquire pair on the count (see
 * LatencyHistogram).
 *
 * Snapshots render as JSON (the `stats` protocol request) and as a
 * human-readable text block (dumped on shutdown).
 */

#ifndef ACCPAR_SERVICE_METRICS_H
#define ACCPAR_SERVICE_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>

#include "util/json.h"

namespace accpar::service {

/**
 * Fixed-bucket log-spaced latency histogram covering 1 microsecond to
 * 100 seconds at 8 buckets per decade, plus an overflow bucket.
 * Quantiles are answered from the bucket counts (log-interpolated
 * within the winning bucket), so record() is a single atomic add.
 *
 * Consistency contract: record() publishes its bucket increment with a
 * release increment of the total count, and quantile()/count() load the
 * count with acquire. A reader that observes count == N therefore also
 * observes at least N bucket increments, so a quantile walk can never
 * run out of buckets and fall through to the overflow bound while
 * writers are concurrent. The histogram is monotonically accumulating
 * for the process lifetime — there is deliberately no reset(), which
 * could not be made consistent against concurrent record() without
 * putting a lock on the hot path.
 */
class LatencyHistogram
{
  public:
    /** 8 decades (1e-6 .. 1e2 s), 8 buckets each, plus overflow. */
    static constexpr int kBucketsPerDecade = 8;
    static constexpr int kDecades = 8;
    static constexpr int kBuckets = kBucketsPerDecade * kDecades + 1;

    void record(double seconds);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_acquire);
    }

    /** Sum of recorded values (seconds). */
    double totalSeconds() const;

    /**
     * Value at quantile @p q in [0, 1], estimated from the histogram
     * buckets; 0 when nothing was recorded. Monotone in q.
     */
    double quantile(double q) const;

  private:
    static int bucketFor(double seconds);
    static double bucketUpperBound(int bucket);

    std::atomic<std::uint64_t> _buckets[kBuckets] = {};
    /** Incremented (release) after the bucket; see the class comment. */
    std::atomic<std::uint64_t> _count{0};
    /** Accumulated nanoseconds; atomic so record() stays lock-free.
     *  Only the total-seconds read-out: allowed to tear vs _count. */
    std::atomic<std::uint64_t> _sumNanos{0};
};

/** One coherent-enough read of every counter, for rendering. */
struct MetricsSnapshot
{
    std::uint64_t requestsTotal = 0;
    std::uint64_t planRequests = 0;
    std::uint64_t searchRequests = 0;
    std::uint64_t validateRequests = 0;
    std::uint64_t statsRequests = 0;
    std::uint64_t shutdownRequests = 0;
    std::uint64_t errors = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t queueRejected = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::int64_t queueDepth = 0;
    std::uint64_t latencyCount = 0;
    double latencyTotalSeconds = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    double cacheHitRate() const
    {
        const std::uint64_t total = cacheHits + cacheMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(cacheHits) /
                                static_cast<double>(total);
    }

    util::Json toJson() const;
    std::string toText() const;
};

/** The service-wide metrics registry. */
class Metrics
{
  public:
    std::atomic<std::uint64_t> requestsTotal{0};
    std::atomic<std::uint64_t> planRequests{0};
    std::atomic<std::uint64_t> searchRequests{0};
    std::atomic<std::uint64_t> validateRequests{0};
    std::atomic<std::uint64_t> statsRequests{0};
    std::atomic<std::uint64_t> shutdownRequests{0};
    /** Requests answered with ok=false (any error code). */
    std::atomic<std::uint64_t> errors{0};
    /** Lines that never parsed into a request (ASRV01..ASRV04). */
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> queueRejected{0};
    std::atomic<std::uint64_t> deadlineExpired{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    /** Current admission-queue depth (gauge). */
    std::atomic<std::int64_t> queueDepth{0};

    /** End-to-end latency of queued (plan/search/validate) requests. */
    LatencyHistogram latency;

    MetricsSnapshot snapshot() const;
};

} // namespace accpar::service

#endif // ACCPAR_SERVICE_METRICS_H
