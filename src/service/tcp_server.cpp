#include "service/tcp_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/plan_service.h"
#include "util/error.h"
#include "util/logging.h"

namespace accpar::service {

namespace {

/** Poll granularity of the accept/connection loops. */
constexpr int kPollMillis = 100;

std::atomic<bool> g_signalStop{false};

void
onStopSignal(int)
{
    g_signalStop.store(true, std::memory_order_release);
}

} // namespace

void
installSignalStop()
{
    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    // A client vanishing mid-write must not kill the server.
    signal(SIGPIPE, SIG_IGN);
}

bool
signalStopRequested()
{
    return g_signalStop.load(std::memory_order_acquire);
}

TcpServer::TcpServer(PlanService &service,
                     const TcpServerConfig &config)
    : _service(service), _config(config)
{
    ACCPAR_REQUIRE(_config.port >= 0 && _config.port <= 65535,
                   "port must be in [0, 65535], got "
                       << _config.port);
    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    ACCPAR_REQUIRE(_listenFd >= 0, "cannot create listening socket: "
                                       << std::strerror(errno));

    const int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(_config.port));
    if (::inet_pton(AF_INET, _config.host.c_str(), &addr.sin_addr) !=
        1) {
        ::close(_listenFd);
        _listenFd = -1;
        throw util::ConfigError("bad listen address '" +
                                _config.host + "'");
    }
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(_listenFd, 64) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(_listenFd);
        _listenFd = -1;
        throw util::ConfigError("cannot listen on " + _config.host +
                                ':' + std::to_string(_config.port) +
                                ": " + reason);
    }

    sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(_listenFd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        _port = ntohs(bound.sin_port);
    else
        _port = _config.port;
}

TcpServer::~TcpServer()
{
    stop();
    if (_listenFd >= 0)
        ::close(_listenFd);
    const util::LockGuard lock(_threadsMutex);
    for (std::thread &thread : _threads)
        if (thread.joinable())
            thread.join();
}

bool
TcpServer::stopping() const
{
    return _stop.load(std::memory_order_acquire) ||
           signalStopRequested() || _service.shutdownRequested();
}

void
TcpServer::serve()
{
    ACCPAR_INFO("serve: listening on " << _config.host << ':'
                                       << _port);
    while (!stopping()) {
        pollfd pfd = {};
        pfd.fd = _listenFd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kPollMillis);
        if (ready <= 0)
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        const util::LockGuard lock(_threadsMutex);
        _threads.emplace_back(
            [this, fd] { connectionLoop(fd); });
    }

    ACCPAR_INFO("serve: draining");
    // Stop accepting, let every connection notice the stop flag and
    // finish its in-flight request, then drain queued service work.
    _stop.store(true, std::memory_order_release);
    {
        const util::LockGuard lock(_threadsMutex);
        for (std::thread &thread : _threads)
            if (thread.joinable())
                thread.join();
        _threads.clear();
    }
    _service.shutdown();
    ACCPAR_INFO("serve: stopped");
}

void
TcpServer::connectionLoop(int fd)
{
    std::string buffer;
    char chunk[64 * 1024];
    while (!stopping()) {
        pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kPollMillis);
        if (ready < 0)
            break;
        if (ready == 0)
            continue;
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(got));
        if (buffer.size() > _config.maxLineBytes) {
            ACCPAR_WARN("serve: dropping connection with "
                        << buffer.size()
                        << " byte line (limit "
                        << _config.maxLineBytes << ")");
            break;
        }

        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos;
             nl = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            std::string response = _service.handleLine(line);
            response += '\n';
            std::size_t sent = 0;
            while (sent < response.size()) {
                const ssize_t wrote =
                    ::write(fd, response.data() + sent,
                            response.size() - sent);
                if (wrote <= 0)
                    break;
                sent += static_cast<std::size_t>(wrote);
            }
            if (sent < response.size())
                break;
        }
        buffer.erase(0, start);
    }
    ::close(fd);
}

} // namespace accpar::service
