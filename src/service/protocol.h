/**
 * @file
 * The newline-delimited JSON protocol of the planning service.
 *
 * Every request is one JSON object on one line; every response is one
 * JSON object on one line. Request kinds:
 *
 *   plan      search a partition plan
 *             {"kind":"plan", "id":…, "model":"vgg16"|{inline doc},
 *              "batch":512, "params":{"depth":12, "heads":8},
 *              "array":"hetero", "strategy":"accpar",
 *              "verify":true, "strict":false, "deadline_ms":0}
 *             "model" names any models::catalog() entry (`accpar
 *             models` lists them); "params" carries the entry's build
 *             parameters (values are strings or integers; "batch" is
 *             shorthand for params.batch and loses to an explicit
 *             one)
 *             the payload carries "certificate_fingerprint": the
 *             16-hex-digit FNV-1a fingerprint of the solve's plan
 *             certificate (see core/certificate_io.h), so a response —
 *             cached or fresh — can be matched to the certificate file
 *             that proves it
 *   search    outer-loop hierarchy/assignment search, then plan
 *             {"kind":"search", "id":…, model/batch/params/array/
 *              strategy/verify/strict as for plan,
 *              "budget_iters":64, "budget_ms":0, "seed":1,
 *              "deadline_ms":0}
 *             runs the simulated-annealing outer search (DESIGN.md
 *             §16) before the inner solve; at least one budget must
 *             be positive (else ASRV09). A wall-clock budget is
 *             clamped to the request's remaining deadline; an
 *             iteration-only budget under a deadline gains a
 *             wall-clock cap the same way. The payload extends plan's
 *             with "baseline_cost", "best_cost", "search_iterations"
 *             and the "anytime" curve. Only iteration-budgeted,
 *             deadline-free searches are served from the result cache
 *             (wall-clock budgets are run-to-run dependent).
 *   validate  lint a model document and optionally verify a plan
 *             {"kind":"validate", "id":…, "model":{inline doc},
 *              ["plan":{plan doc}, "array":SPEC, "strategy":S],
 *              "strict":false}
 *   stats     {"kind":"stats", "id":…} -> metrics + cache snapshot
 *   shutdown  {"kind":"shutdown", "id":…} -> graceful drain
 *
 * Responses echo "id" verbatim and carry "ok":true plus kind-specific
 * payload, or "ok":false with {"error":{"code","message"}}. Error codes
 * are stable API (catalog in DESIGN.md §10):
 *
 *   ASRV01  line is not parseable JSON (malformed, or nested deeper
 *           than the parser's recursion limit)
 *   ASRV02  not a JSON object, or "kind" missing / not a string
 *   ASRV03  unknown request kind
 *   ASRV04  invalid request field (bad type, unknown model/array/
 *           strategy, malformed inline document)
 *   ASRV05  admission queue full, request rejected
 *   ASRV06  per-request deadline expired before planning started
 *   ASRV07  planning failed (solver/verifier rejected the request)
 *   ASRV08  server is draining; no new work accepted
 *   ASRV09  search request without a usable budget (budget_iters and
 *           budget_ms both unset/zero, or the deadline already
 *           consumed the whole wall-clock budget)
 */

#ifndef ACCPAR_SERVICE_PROTOCOL_H
#define ACCPAR_SERVICE_PROTOCOL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/json.h"

namespace accpar::service {

/// @name Stable protocol error codes.
/// @{
inline constexpr char kErrParse[] = "ASRV01";
inline constexpr char kErrNotRequest[] = "ASRV02";
inline constexpr char kErrUnknownKind[] = "ASRV03";
inline constexpr char kErrBadField[] = "ASRV04";
inline constexpr char kErrQueueFull[] = "ASRV05";
inline constexpr char kErrDeadline[] = "ASRV06";
inline constexpr char kErrPlanFailed[] = "ASRV07";
inline constexpr char kErrShuttingDown[] = "ASRV08";
inline constexpr char kErrNoBudget[] = "ASRV09";
/// @}

/** What a request asks the service to do. */
enum class RequestKind { Plan, Search, Validate, Stats, Shutdown };

/** Lowercase wire name of @p kind. */
const char *requestKindName(RequestKind kind);

/** A parsed, field-validated protocol request. */
struct ServiceRequest
{
    /** Client correlation id, echoed verbatim (null when absent). */
    util::Json id;
    RequestKind kind = RequestKind::Stats;

    /** Inline model document ("model" was an object). */
    std::optional<util::Json> modelDoc;
    /** Catalog model name ("model" was a string; plan only). */
    std::string modelName = "vgg16";
    std::int64_t batch = 512;
    /** Catalog build parameters ("params" object, stringified). */
    std::map<std::string, std::string> params;
    std::string array = "hetero";
    std::string strategy = "accpar";
    bool verify = true;
    bool strict = false;
    /** Optional plan document for validate. */
    std::optional<util::Json> planDoc;
    /** 0 = no deadline. */
    double deadlineSeconds = 0.0;

    /// @name Outer-search budget (search requests only).
    /// @{
    std::int64_t budgetIters = 0;
    double budgetMs = 0.0;
    std::uint64_t seed = 1;
    /// @}
};

/** A protocol-level failure with its stable code. */
struct ServiceError
{
    std::string code;
    std::string message;
    /** Correlation id of the failing request, when it was readable. */
    util::Json id;
};

/**
 * Parses one request line. Returns the validated request, or the
 * ServiceError to answer with (codes ASRV01..ASRV04).
 */
std::variant<ServiceRequest, ServiceError>
parseRequest(const std::string &line);

/** Renders the error envelope {"id":…,"ok":false,"error":{…}}. */
util::Json errorResponse(const util::Json &id,
                         const ServiceError &error);

/**
 * Renders a success envelope: {"id":…,"ok":true,"kind":…} with every
 * member of @p payload merged in at the top level.
 */
util::Json okResponse(const util::Json &id, RequestKind kind,
                      const util::Json &payload);

} // namespace accpar::service

#endif // ACCPAR_SERVICE_PROTOCOL_H
