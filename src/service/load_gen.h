/**
 * @file
 * Closed-loop load generator for the planning service (`accpar load`).
 *
 * K client workers each hold one connection (TCP, or the in-process
 * loopback when a PlanService is passed directly) and issue requests
 * back to back — a new request leaves as soon as the previous response
 * arrives — until N requests have been sent in total. The request
 * stream cycles through the configured kind mix; every request of one
 * kind is identical, so the first `plan` is a cold solve and the rest
 * exercise the service's result cache.
 *
 * The report aggregates exact per-request latencies (p50/p95/p99 over
 * the full sample, not histogram estimates), error counts by code, and
 * how many responses were served from the result cache.
 */

#ifndef ACCPAR_SERVICE_LOAD_GEN_H
#define ACCPAR_SERVICE_LOAD_GEN_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace accpar::service {

class PlanService;

/** What traffic to generate and where to send it. */
struct LoadGenConfig
{
    std::string host = "127.0.0.1";
    int port = 0;
    /** Total requests across all workers. */
    int requests = 100;
    /** Concurrent closed-loop clients. */
    int concurrency = 4;
    /** Request kinds cycled per request ("plan", "validate"). */
    std::vector<std::string> mix = {"plan"};
    /** Payload of the plan requests. */
    std::string model = "lenet";
    std::int64_t batch = 32;
    /** Catalog build parameters, sent as the "params" object. */
    std::map<std::string, std::string> params;
    std::string array = "tpu-v3:2";
    std::string strategy = "accpar";
    /** Send a shutdown request once the run completes. */
    bool shutdownAfter = false;
};

/** What one load run measured. */
struct LoadGenReport
{
    int sent = 0;
    int ok = 0;
    int errors = 0;
    int cacheHits = 0;
    double wallSeconds = 0.0;
    double requestsPerSecond = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /** Error occurrences by stable code (ASRV01..). */
    std::map<std::string, int> errorCodes;
};

/**
 * Runs the configured load. With a non-null @p loopback the requests
 * go straight into that service (no sockets); otherwise each worker
 * connects to host:port. Throws ConfigError when a connection cannot
 * be established or the mix names an unknown kind.
 */
LoadGenReport runLoadGen(const LoadGenConfig &config,
                         PlanService *loopback = nullptr);

/** Renders the report as the stable `key: value` block the smoke
 *  tests grep (includes "errors:" and "cache hits:" lines). */
std::string formatLoadReport(const LoadGenReport &report);

/** Splits "plan,validate" into a validated kind mix. */
std::vector<std::string> parseLoadMix(const std::string &mix);

} // namespace accpar::service

#endif // ACCPAR_SERVICE_LOAD_GEN_H
