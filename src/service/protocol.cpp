#include "service/protocol.h"

#include "util/error.h"

namespace accpar::service {

namespace {

/** Reads an optional member, enforcing its JSON kind. */
const util::Json *
member(const util::Json &doc, const std::string &key)
{
    return doc.contains(key) ? &doc.at(key) : nullptr;
}

std::string
stringField(const util::Json &doc, const std::string &key,
            const std::string &fallback)
{
    const util::Json *value = member(doc, key);
    if (!value)
        return fallback;
    if (value->kind() != util::Json::Kind::String)
        throw util::ConfigError("field '" + key +
                                "' must be a string");
    return value->asString();
}

bool
boolField(const util::Json &doc, const std::string &key, bool fallback)
{
    const util::Json *value = member(doc, key);
    if (!value)
        return fallback;
    if (value->kind() != util::Json::Kind::Bool)
        throw util::ConfigError("field '" + key + "' must be a bool");
    return value->asBool();
}

double
numberField(const util::Json &doc, const std::string &key,
            double fallback)
{
    const util::Json *value = member(doc, key);
    if (!value)
        return fallback;
    if (value->kind() != util::Json::Kind::Number)
        throw util::ConfigError("field '" + key +
                                "' must be a number");
    return value->asNumber();
}

} // namespace

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
      case RequestKind::Plan:
        return "plan";
      case RequestKind::Search:
        return "search";
      case RequestKind::Validate:
        return "validate";
      case RequestKind::Stats:
        return "stats";
      case RequestKind::Shutdown:
        return "shutdown";
    }
    return "?";
}

std::variant<ServiceRequest, ServiceError>
parseRequest(const std::string &line)
{
    util::Json doc;
    try {
        doc = util::Json::parse(line);
    } catch (const std::exception &e) {
        return ServiceError{kErrParse,
                            std::string("malformed request: ") +
                                e.what()};
    }

    if (doc.kind() != util::Json::Kind::Object)
        return ServiceError{kErrNotRequest,
                            "request must be a JSON object"};

    ServiceRequest request;
    if (doc.contains("id"))
        request.id = doc.at("id");

    if (!doc.contains("kind") ||
        doc.at("kind").kind() != util::Json::Kind::String)
        return ServiceError{kErrNotRequest,
                            "request needs a string 'kind'",
                            request.id};
    const std::string &kind = doc.at("kind").asString();
    if (kind == "plan")
        request.kind = RequestKind::Plan;
    else if (kind == "search")
        request.kind = RequestKind::Search;
    else if (kind == "validate")
        request.kind = RequestKind::Validate;
    else if (kind == "stats")
        request.kind = RequestKind::Stats;
    else if (kind == "shutdown")
        request.kind = RequestKind::Shutdown;
    else
        return ServiceError{kErrUnknownKind,
                            "unknown request kind '" + kind + "'",
                            request.id};

    try {
        if (const util::Json *model = member(doc, "model")) {
            if (model->kind() == util::Json::Kind::Object)
                request.modelDoc = *model;
            else if (model->kind() == util::Json::Kind::String)
                request.modelName = model->asString();
            else
                throw util::ConfigError(
                    "field 'model' must be a zoo name or an inline "
                    "model object");
        }
        if (request.kind == RequestKind::Validate && !request.modelDoc)
            throw util::ConfigError(
                "validate requests need an inline 'model' document");

        const double batch = numberField(
            doc, "batch", static_cast<double>(request.batch));
        if (batch < 1 || batch != static_cast<double>(
                                      static_cast<std::int64_t>(batch)))
            throw util::ConfigError(
                "field 'batch' must be a positive integer");
        request.batch = static_cast<std::int64_t>(batch);

        if (const util::Json *params = member(doc, "params")) {
            if (params->kind() != util::Json::Kind::Object)
                throw util::ConfigError(
                    "field 'params' must be an object of build "
                    "parameters");
            for (const auto &[key, value] : params->asObject()) {
                if (value.kind() == util::Json::Kind::String) {
                    request.params[key] = value.asString();
                } else if (value.kind() == util::Json::Kind::Number) {
                    request.params[key] =
                        std::to_string(value.asInt());
                } else {
                    throw util::ConfigError(
                        "params '" + key +
                        "' must be a string or an integer");
                }
            }
        }

        request.array = stringField(doc, "array", request.array);
        request.strategy =
            stringField(doc, "strategy", request.strategy);
        request.verify = boolField(doc, "verify", request.verify);
        request.strict = boolField(doc, "strict", request.strict);

        if (const util::Json *plan = member(doc, "plan")) {
            if (plan->kind() != util::Json::Kind::Object)
                throw util::ConfigError(
                    "field 'plan' must be a plan object");
            request.planDoc = *plan;
        }

        const double deadline_ms = numberField(doc, "deadline_ms", 0.0);
        if (deadline_ms < 0.0)
            throw util::ConfigError(
                "field 'deadline_ms' must be >= 0");
        request.deadlineSeconds = deadline_ms / 1e3;

        const double budget_iters =
            numberField(doc, "budget_iters", 0.0);
        if (budget_iters < 0.0 ||
            budget_iters !=
                static_cast<double>(
                    static_cast<std::int64_t>(budget_iters)))
            throw util::ConfigError(
                "field 'budget_iters' must be a non-negative integer");
        request.budgetIters = static_cast<std::int64_t>(budget_iters);

        request.budgetMs = numberField(doc, "budget_ms", 0.0);
        if (request.budgetMs < 0.0)
            throw util::ConfigError("field 'budget_ms' must be >= 0");

        const double seed = numberField(
            doc, "seed", static_cast<double>(request.seed));
        if (seed < 0.0 ||
            seed != static_cast<double>(
                        static_cast<std::uint64_t>(seed)))
            throw util::ConfigError(
                "field 'seed' must be a non-negative integer");
        request.seed = static_cast<std::uint64_t>(seed);
    } catch (const std::exception &e) {
        // Keep the id so the client can correlate the rejection.
        return ServiceError{kErrBadField, e.what(), request.id};
    }
    return request;
}

util::Json
errorResponse(const util::Json &id, const ServiceError &error)
{
    util::Json detail = util::Json::Object{};
    detail["code"] = error.code;
    detail["message"] = error.message;

    util::Json doc = util::Json::Object{};
    doc["id"] = id;
    doc["ok"] = false;
    doc["error"] = std::move(detail);
    return doc;
}

util::Json
okResponse(const util::Json &id, RequestKind kind,
           const util::Json &payload)
{
    util::Json doc = util::Json::Object{};
    doc["id"] = id;
    doc["ok"] = true;
    doc["kind"] = requestKindName(kind);
    if (payload.kind() == util::Json::Kind::Object)
        for (const auto &[key, value] : payload.asObject())
            doc[key] = value;
    return doc;
}

} // namespace accpar::service
