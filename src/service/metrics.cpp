#include "service/metrics.h"

#include <cmath>
#include <sstream>

namespace accpar::service {

namespace {

/** Left edge of the histogram: 1 microsecond. */
constexpr double kMinLatency = 1e-6;

} // namespace

int
LatencyHistogram::bucketFor(double seconds)
{
    if (!(seconds > kMinLatency))
        return 0;
    const int bucket = static_cast<int>(
        std::floor(std::log10(seconds / kMinLatency) *
                   kBucketsPerDecade));
    if (bucket < 0)
        return 0;
    if (bucket >= kBuckets)
        return kBuckets - 1;
    return bucket;
}

double
LatencyHistogram::bucketUpperBound(int bucket)
{
    return kMinLatency *
           std::pow(10.0, static_cast<double>(bucket + 1) /
                              kBucketsPerDecade);
}

void
LatencyHistogram::record(double seconds)
{
    if (!(seconds >= 0.0) || !std::isfinite(seconds))
        seconds = 0.0;
    _buckets[bucketFor(seconds)].fetch_add(1,
                                           std::memory_order_relaxed);
    _sumNanos.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
    // Release-publishes the bucket (and sum) increments above; paired
    // with the acquire load in count()/quantile().
    _count.fetch_add(1, std::memory_order_release);
}

double
LatencyHistogram::totalSeconds() const
{
    return static_cast<double>(
               _sumNanos.load(std::memory_order_relaxed)) *
           1e-9;
}

double
LatencyHistogram::quantile(double q) const
{
    const std::uint64_t total = _count.load(std::memory_order_acquire);
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the requested quantile, 1-based, at least 1.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t in_bucket =
            _buckets[i].load(std::memory_order_relaxed);
        if (in_bucket == 0)
            continue;
        seen += in_bucket;
        if (seen >= (rank == 0 ? 1 : rank))
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot snap;
    snap.requestsTotal = requestsTotal.load(std::memory_order_relaxed);
    snap.planRequests = planRequests.load(std::memory_order_relaxed);
    snap.searchRequests =
        searchRequests.load(std::memory_order_relaxed);
    snap.validateRequests =
        validateRequests.load(std::memory_order_relaxed);
    snap.statsRequests = statsRequests.load(std::memory_order_relaxed);
    snap.shutdownRequests =
        shutdownRequests.load(std::memory_order_relaxed);
    snap.errors = errors.load(std::memory_order_relaxed);
    snap.protocolErrors = protocolErrors.load(std::memory_order_relaxed);
    snap.queueRejected = queueRejected.load(std::memory_order_relaxed);
    snap.deadlineExpired =
        deadlineExpired.load(std::memory_order_relaxed);
    snap.cacheHits = cacheHits.load(std::memory_order_relaxed);
    snap.cacheMisses = cacheMisses.load(std::memory_order_relaxed);
    snap.queueDepth = queueDepth.load(std::memory_order_relaxed);
    snap.latencyCount = latency.count();
    snap.latencyTotalSeconds = latency.totalSeconds();
    snap.p50 = latency.quantile(0.50);
    snap.p95 = latency.quantile(0.95);
    snap.p99 = latency.quantile(0.99);
    return snap;
}

util::Json
MetricsSnapshot::toJson() const
{
    util::Json requests = util::Json::Object{};
    requests["total"] = static_cast<std::int64_t>(requestsTotal);
    requests["plan"] = static_cast<std::int64_t>(planRequests);
    requests["search"] = static_cast<std::int64_t>(searchRequests);
    requests["validate"] = static_cast<std::int64_t>(validateRequests);
    requests["stats"] = static_cast<std::int64_t>(statsRequests);
    requests["shutdown"] = static_cast<std::int64_t>(shutdownRequests);

    util::Json cache = util::Json::Object{};
    cache["hits"] = static_cast<std::int64_t>(cacheHits);
    cache["misses"] = static_cast<std::int64_t>(cacheMisses);
    cache["hit_rate"] = cacheHitRate();

    util::Json lat = util::Json::Object{};
    lat["count"] = static_cast<std::int64_t>(latencyCount);
    lat["total_seconds"] = latencyTotalSeconds;
    lat["p50_seconds"] = p50;
    lat["p95_seconds"] = p95;
    lat["p99_seconds"] = p99;

    util::Json doc = util::Json::Object{};
    doc["requests"] = std::move(requests);
    doc["errors"] = static_cast<std::int64_t>(errors);
    doc["protocol_errors"] = static_cast<std::int64_t>(protocolErrors);
    doc["queue_rejected"] = static_cast<std::int64_t>(queueRejected);
    doc["deadline_expired"] =
        static_cast<std::int64_t>(deadlineExpired);
    doc["queue_depth"] = static_cast<std::int64_t>(queueDepth);
    doc["result_cache"] = std::move(cache);
    doc["latency"] = std::move(lat);
    return doc;
}

std::string
MetricsSnapshot::toText() const
{
    std::ostringstream os;
    os << "service metrics\n"
       << "  requests:         " << requestsTotal << " (plan "
       << planRequests << ", search " << searchRequests
       << ", validate " << validateRequests << ", stats "
       << statsRequests << ", shutdown " << shutdownRequests
       << ")\n"
       << "  errors:           " << errors << " (protocol "
       << protocolErrors << ", queue-full " << queueRejected
       << ", deadline " << deadlineExpired << ")\n"
       << "  result cache:     " << cacheHits << " hits, "
       << cacheMisses << " misses (hit rate "
       << static_cast<int>(cacheHitRate() * 100.0 + 0.5) << "%)\n"
       << "  queue depth:      " << queueDepth << '\n'
       << "  latency:          n=" << latencyCount << " p50="
       << p50 * 1e3 << "ms p95=" << p95 * 1e3 << "ms p99="
       << p99 * 1e3 << "ms\n";
    return os.str();
}

} // namespace accpar::service
