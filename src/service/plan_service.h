/**
 * @file
 * The planning service engine behind `accpar serve`.
 *
 * A PlanService turns protocol requests (see service/protocol.h) into
 * responses using a pool of worker threads, each owning its own
 * core::Planner (a Planner parallelizes internally but is not itself
 * thread-safe, so one per worker gives safe concurrent solves while
 * each worker's cost cache warms across requests). Work flows through
 * a bounded admission queue — when it is full new requests are rejected
 * immediately with ASRV05 instead of building unbounded backlog — and
 * every queued request may carry a deadline after which it is answered
 * with ASRV06 instead of being solved.
 *
 * Plan responses are additionally memoized in a sharded LRU
 * ResultCache keyed by core::planRequestCanonicalKey, so a repeated
 * (model, array, options) query is answered without re-running the
 * search and is byte-identical to the cold response. Search responses
 * join the cache only when their budget is purely iteration-counted
 * and no deadline applies — those runs are deterministic functions of
 * the request, wall-clock-budgeted ones are not.
 *
 * `stats` and `shutdown` requests are handled inline (they must stay
 * responsive when the queue is busy). After a shutdown request the
 * service drains: queued work still completes, new work is rejected
 * with ASRV08, and shutdownRequested() flips so transports can stop
 * accepting.
 */

#ifndef ACCPAR_SERVICE_PLAN_SERVICE_H
#define ACCPAR_SERVICE_PLAN_SERVICE_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "util/json.h"
#include "util/sync.h"

namespace accpar {
class Planner; // core facade (core/planner.h)
}

namespace accpar::service {

/** Tunables of one PlanService instance. */
struct ServiceConfig
{
    /** Concurrent planning workers (each owns a Planner). */
    int workers = 2;
    /** Parallelism lanes inside each worker's Planner. */
    int plannerJobs = 1;
    /** Admission-queue bound; 0 rejects every queued request. */
    std::size_t maxQueue = 64;
    /** Result-cache entry budget (0 disables result caching). */
    std::size_t cacheEntries = 512;
    /** Result-cache lock shards. */
    std::size_t cacheShards = 8;
    /** Applied to requests that carry no deadline; 0 = none. */
    double defaultDeadlineSeconds = 0.0;
};

/** The request-processing engine (transport-independent). */
class PlanService
{
  public:
    explicit PlanService(const ServiceConfig &config);
    ~PlanService();

    PlanService(const PlanService &) = delete;
    PlanService &operator=(const PlanService &) = delete;

    /**
     * Handles one protocol line end to end (parse, dispatch, wait) and
     * returns the single-line response. This is the in-process
     * loopback transport: callable from any number of threads
     * concurrently, no sockets involved.
     */
    std::string handleLine(const std::string &line);

    /** Handles an already parsed request (blocks until answered). */
    util::Json handle(const ServiceRequest &request);

    /** True once a shutdown request arrived or shutdown() was called. */
    bool shutdownRequested() const
    {
        return _draining.load(std::memory_order_acquire);
    }

    /**
     * Drains and stops: rejects new work, finishes every queued
     * request, joins the workers. Idempotent; also run by the
     * destructor.
     */
    void shutdown() ACCPAR_EXCLUDES(_queueMutex);

    const ServiceConfig &config() const { return _config; }
    Metrics &metrics() { return _metrics; }
    ResultCache &cache() { return _cache; }

    /** The `stats` response payload (metrics + cache + config). */
    util::Json statsPayload() const;

    /** Human-readable stats block (dumped on server shutdown). */
    std::string statsText() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Job
    {
        ServiceRequest request;
        Clock::time_point enqueued;
        /** Zero when the request has no deadline. */
        Clock::time_point deadline{};
        std::promise<util::Json> promise;
    };

    void workerLoop();
    util::Json process(Job &job, Planner &planner);
    util::Json executePlan(const ServiceRequest &request,
                           Planner &planner);
    /**
     * Runs the outer-loop search (DESIGN.md §16) and plans on the
     * winning hierarchy. @p remainingDeadlineMs is the wall clock left
     * before the job's deadline (0 = no deadline); it caps the
     * search's time budget via search::clampBudget. Only
     * iteration-budgeted, deadline-free searches touch the result
     * cache — wall-clock budgets are run-to-run dependent.
     */
    util::Json executeSearch(const ServiceRequest &request,
                             Planner &planner,
                             double remainingDeadlineMs);
    util::Json executeValidate(const ServiceRequest &request);
    util::Json enqueue(const ServiceRequest &request)
        ACCPAR_EXCLUDES(_queueMutex);
    util::Json finishResponse(util::Json response,
                              Clock::time_point started);

    ServiceConfig _config;
    Metrics _metrics;
    ResultCache _cache;

    util::Mutex _queueMutex{"PlanService::_queueMutex"};
    util::CondVar _queueReady;
    std::deque<std::unique_ptr<Job>> _queue
        ACCPAR_GUARDED_BY(_queueMutex);
    bool _stopWorkers ACCPAR_GUARDED_BY(_queueMutex) = false;
    std::atomic<bool> _draining{false};
    std::vector<std::thread> _workers;
};

} // namespace accpar::service

#endif // ACCPAR_SERVICE_PLAN_SERVICE_H
