/**
 * @file
 * TCP transport for the planning service.
 *
 * A TcpServer owns a listening socket and serves the newline-delimited
 * JSON protocol to any number of concurrent connections (one thread
 * per connection; connections are long-lived and pipeline requests).
 * The accept and connection loops poll with a short timeout instead of
 * blocking, so a stop request — stop(), a protocol `shutdown` request,
 * or a SIGINT/SIGTERM registered via installSignalStop() — is honored
 * within ~100ms: the listener closes, in-flight requests drain through
 * the service, every connection thread joins, and serve() returns.
 */

#ifndef ACCPAR_SERVICE_TCP_SERVER_H
#define ACCPAR_SERVICE_TCP_SERVER_H

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace accpar::service {

class PlanService;

/** Where to listen. */
struct TcpServerConfig
{
    std::string host = "127.0.0.1";
    /** 0 asks the kernel for an ephemeral port (see port()). */
    int port = 0;
    /** Protocol lines longer than this close the connection. */
    std::size_t maxLineBytes = 16u << 20;
};

/**
 * Installs SIGINT/SIGTERM handlers that request a graceful stop of
 * every TcpServer in the process (async-signal-safe flag set; the
 * serve loops notice on their next poll tick).
 */
void installSignalStop();

/** True once a stop signal was delivered. */
bool signalStopRequested();

/** Blocking TCP front end over one PlanService. */
class TcpServer
{
  public:
    /** Binds and listens; throws ConfigError on failure. */
    TcpServer(PlanService &service, const TcpServerConfig &config);
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** The actually bound port (resolves port 0). */
    int port() const { return _port; }

    /**
     * Accepts and serves connections until stop()/signal/protocol
     * shutdown, then drains the service and joins every connection.
     */
    void serve();

    /** Requests serve() to wind down (thread-safe). */
    void stop() { _stop.store(true, std::memory_order_release); }

  private:
    void connectionLoop(int fd);
    bool stopping() const;

    PlanService &_service;
    TcpServerConfig _config;
    int _listenFd = -1;
    int _port = 0;
    std::atomic<bool> _stop{false};
    util::Mutex _threadsMutex{"TcpServer::_threadsMutex"};
    std::vector<std::thread> _threads
        ACCPAR_GUARDED_BY(_threadsMutex);
};

} // namespace accpar::service

#endif // ACCPAR_SERVICE_TCP_SERVER_H
