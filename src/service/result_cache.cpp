#include "service/result_cache.h"

#include <algorithm>
#include <functional>

namespace accpar::service {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : _capacity(capacity)
{
    shards = std::clamp<std::size_t>(shards, 1, 64);
    // A shard never holds more than its share (rounded up), so the
    // global entry count stays within capacity + shards - 1 of the
    // budget while keeping shards fully independent.
    _shardCapacity =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    _shards.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        _shards.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key)
{
    const std::size_t hash = std::hash<std::string>{}(key);
    return *_shards[hash % _shards.size()];
}

std::optional<util::Json>
ResultCache::lookup(const std::string &key)
{
    if (_capacity == 0) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    Shard &shard = shardFor(key);
    const util::LockGuard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    _hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->payload;
}

void
ResultCache::insert(const std::string &key, util::Json payload)
{
    if (_capacity == 0)
        return;
    Shard &shard = shardFor(key);
    const util::LockGuard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->payload = std::move(payload);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, std::move(payload)});
    shard.index[key] = shard.lru.begin();
    _insertions.fetch_add(1, std::memory_order_relaxed);
    _entries.fetch_add(1, std::memory_order_relaxed);
    evictLocked(shard);
}

void
ResultCache::evictLocked(Shard &shard)
{
    while (shard.lru.size() > _shardCapacity) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        _evictions.fetch_add(1, std::memory_order_relaxed);
        _entries.fetch_sub(1, std::memory_order_relaxed);
    }
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats stats;
    stats.hits = _hits.load(std::memory_order_relaxed);
    stats.misses = _misses.load(std::memory_order_relaxed);
    stats.insertions = _insertions.load(std::memory_order_relaxed);
    stats.evictions = _evictions.load(std::memory_order_relaxed);
    const std::int64_t entries =
        _entries.load(std::memory_order_relaxed);
    stats.entries =
        entries < 0 ? 0 : static_cast<std::size_t>(entries);
    return stats;
}

std::size_t
ResultCache::size() const
{
    const std::int64_t entries =
        _entries.load(std::memory_order_relaxed);
    return entries < 0 ? 0 : static_cast<std::size_t>(entries);
}

void
ResultCache::clear()
{
    for (const auto &shard : _shards) {
        const util::LockGuard lock(shard->mutex);
        _entries.fetch_sub(
            static_cast<std::int64_t>(shard->lru.size()),
            std::memory_order_relaxed);
        shard->lru.clear();
        shard->index.clear();
    }
}

} // namespace accpar::service
