#include "service/load_gen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include "service/plan_service.h"
#include "util/error.h"
#include "util/string_util.h"

namespace accpar::service {

namespace {

/** A connected protocol client: loopback or one TCP connection. */
class Client
{
  public:
    explicit Client(PlanService *loopback) : _loopback(loopback) {}

    Client(const std::string &host, int port)
    {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ACCPAR_REQUIRE(_fd >= 0, "cannot create client socket: "
                                     << std::strerror(errno));
        const int one = 1;
        ::setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
            ::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const std::string reason = std::strerror(errno);
            ::close(_fd);
            _fd = -1;
            throw util::ConfigError("cannot connect to " + host + ':' +
                                    std::to_string(port) + ": " +
                                    reason);
        }
    }

    ~Client()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Sends one request line, returns the one-line response. */
    std::string
    roundTrip(const std::string &line)
    {
        if (_loopback)
            return _loopback->handleLine(line);

        std::string out = line;
        out += '\n';
        std::size_t sent = 0;
        while (sent < out.size()) {
            const ssize_t wrote = ::write(_fd, out.data() + sent,
                                          out.size() - sent);
            ACCPAR_REQUIRE(wrote > 0, "connection lost while sending");
            sent += static_cast<std::size_t>(wrote);
        }

        std::size_t nl;
        while ((nl = _buffer.find('\n')) == std::string::npos) {
            char chunk[64 * 1024];
            const ssize_t got = ::read(_fd, chunk, sizeof(chunk));
            ACCPAR_REQUIRE(got > 0,
                           "connection closed before a response");
            _buffer.append(chunk, static_cast<std::size_t>(got));
        }
        std::string response = _buffer.substr(0, nl);
        _buffer.erase(0, nl + 1);
        return response;
    }

  private:
    PlanService *_loopback = nullptr;
    int _fd = -1;
    std::string _buffer;
};

/** Tiny inline model document for the validate requests of the mix. */
util::Json
validateModelDoc()
{
    util::Json input = util::Json::Object{};
    input["batch"] = 8;
    input["channels"] = 16;
    input["height"] = 1;
    input["width"] = 1;

    util::Json fc1 = util::Json::Object{};
    fc1["op"] = "fc";
    fc1["name"] = "fc1";
    fc1["out"] = 32;
    util::Json relu = util::Json::Object{};
    relu["op"] = "relu";
    util::Json fc2 = util::Json::Object{};
    fc2["op"] = "fc";
    fc2["name"] = "fc2";
    fc2["out"] = 10;

    util::Json layers = util::Json::Array{};
    layers.push(std::move(fc1));
    layers.push(std::move(relu));
    layers.push(std::move(fc2));

    util::Json doc = util::Json::Object{};
    doc["name"] = "loadgen-mlp";
    doc["input"] = std::move(input);
    doc["layers"] = std::move(layers);
    return doc;
}

std::string
requestLine(const LoadGenConfig &config, const std::string &kind,
            int id)
{
    util::Json doc = util::Json::Object{};
    doc["kind"] = kind;
    doc["id"] = id;
    if (kind == "plan") {
        doc["model"] = config.model;
        doc["batch"] = static_cast<std::int64_t>(config.batch);
        if (!config.params.empty()) {
            util::Json params = util::Json::Object{};
            for (const auto &[key, value] : config.params)
                params[key] = value;
            doc["params"] = std::move(params);
        }
        doc["array"] = config.array;
        doc["strategy"] = config.strategy;
    } else if (kind == "validate") {
        static const util::Json model = validateModelDoc();
        doc["model"] = model;
    }
    return doc.dump();
}

double
exactQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

std::vector<std::string>
parseLoadMix(const std::string &mix)
{
    std::vector<std::string> kinds;
    for (const std::string &part : util::split(mix, ',')) {
        const std::string kind = util::trim(part);
        if (kind.empty())
            continue;
        ACCPAR_REQUIRE(kind == "plan" || kind == "validate" ||
                           kind == "stats",
                       "load mix may contain plan, validate and "
                       "stats, got '"
                           << kind << "'");
        kinds.push_back(kind);
    }
    ACCPAR_REQUIRE(!kinds.empty(), "load mix is empty");
    return kinds;
}

LoadGenReport
runLoadGen(const LoadGenConfig &config, PlanService *loopback)
{
    ACCPAR_REQUIRE(config.requests >= 1, "need at least one request");
    ACCPAR_REQUIRE(config.concurrency >= 1,
                   "need at least one client");
    ACCPAR_REQUIRE(!config.mix.empty(), "load mix is empty");
    if (!loopback) // Fail fast before spawning workers.
        Client probe(config.host, config.port);

    struct WorkerResult
    {
        std::vector<double> latencies;
        int ok = 0;
        int errors = 0;
        int cacheHits = 0;
        std::map<std::string, int> errorCodes;
    };

    const int workers = std::min(config.concurrency, config.requests);
    std::vector<WorkerResult> results(
        static_cast<std::size_t>(workers));
    std::atomic<int> next{0};

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            WorkerResult &result =
                results[static_cast<std::size_t>(w)];
            try {
                auto client =
                    loopback
                        ? std::make_unique<Client>(loopback)
                        : std::make_unique<Client>(config.host,
                                                   config.port);
                while (true) {
                    const int i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= config.requests)
                        break;
                    const std::string &kind =
                        config.mix[static_cast<std::size_t>(i) %
                                   config.mix.size()];
                    const std::string line =
                        requestLine(config, kind, i);
                    const auto start =
                        std::chrono::steady_clock::now();
                    const std::string raw = client->roundTrip(line);
                    result.latencies.push_back(
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());

                    const util::Json response = util::Json::parse(raw);
                    if (response.contains("ok") &&
                        response.at("ok").asBool()) {
                        ++result.ok;
                        if (response.contains("cached") &&
                            response.at("cached").asBool())
                            ++result.cacheHits;
                    } else {
                        ++result.errors;
                        if (response.contains("error"))
                            ++result.errorCodes[response.at("error")
                                                    .at("code")
                                                    .asString()];
                    }
                }
            } catch (const std::exception &) {
                // A dead connection fails this worker's remaining
                // share; the requests it claimed count as errors.
                ++result.errors;
                ++result.errorCodes["transport"];
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    LoadGenReport report;
    report.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             wall_start)
                             .count();

    std::vector<double> all;
    for (const WorkerResult &result : results) {
        report.ok += result.ok;
        report.errors += result.errors;
        report.cacheHits += result.cacheHits;
        for (const auto &[code, count] : result.errorCodes)
            report.errorCodes[code] += count;
        all.insert(all.end(), result.latencies.begin(),
                   result.latencies.end());
    }
    report.sent = static_cast<int>(all.size());
    report.requestsPerSecond =
        report.wallSeconds > 0.0
            ? static_cast<double>(report.sent) / report.wallSeconds
            : 0.0;
    std::sort(all.begin(), all.end());
    report.p50 = exactQuantile(all, 0.50);
    report.p95 = exactQuantile(all, 0.95);
    report.p99 = exactQuantile(all, 0.99);

    if (config.shutdownAfter) {
        auto client = loopback
                          ? std::make_unique<Client>(loopback)
                          : std::make_unique<Client>(config.host,
                                                     config.port);
        util::Json doc = util::Json::Object{};
        doc["kind"] = "shutdown";
        client->roundTrip(doc.dump());
    }
    return report;
}

std::string
formatLoadReport(const LoadGenReport &report)
{
    std::ostringstream os;
    os << "requests sent:  " << report.sent << '\n'
       << "ok:             " << report.ok << '\n'
       << "errors:         " << report.errors;
    for (const auto &[code, count] : report.errorCodes)
        os << " [" << code << " x" << count << ']';
    os << '\n'
       << "cache hits:     " << report.cacheHits << '\n'
       << "wall time:      " << report.wallSeconds << " s\n"
       << "throughput:     " << report.requestsPerSecond
       << " req/s\n"
       << "latency p50:    " << report.p50 * 1e3 << " ms\n"
       << "latency p95:    " << report.p95 * 1e3 << " ms\n"
       << "latency p99:    " << report.p99 * 1e3 << " ms\n";
    return os.str();
}

} // namespace accpar::service
