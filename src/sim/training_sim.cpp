#include "sim/training_sim.h"

#include <algorithm>

#include "util/error.h"
#include "util/logging.h"

namespace accpar::sim {

namespace {

/**
 * Worst per-board memory footprint under @p plan: each board stores its
 * share of weights plus gradients and of feature maps plus errors at
 * bf16 (a conservative estimate — boundary tensors shared by adjacent
 * layers are counted on both).
 */
struct MemoryWalker
{
    const core::PartitionProblem &problem;
    const hw::Hierarchy &hierarchy;
    const core::PartitionPlan &plan;
    double bytesPerElement;
    /** Weight + gradient + optimizer state copies. */
    double weightCopies = 2.0;
    util::Bytes peak = 0.0;
    bool fits = true;

    void
    walk(hw::NodeId id, const std::vector<core::DimScales> &scales)
    {
        const hw::HierarchyNode &hn = hierarchy.node(id);
        if (hn.isLeaf()) {
            const std::vector<core::LayerDims> dims =
                core::scaledDims(problem, scales);
            util::Bytes bytes = 0.0;
            for (std::size_t v = 0; v < dims.size(); ++v) {
                const core::LayerDims &d = dims[v];
                bytes += weightCopies * d.sizeWeight() * bytesPerElement;
                bytes += 2.0 * (d.sizeInput() + d.sizeOutput()) *
                         bytesPerElement;
            }
            peak = std::max(peak, bytes);
            if (bytes > hn.group.memoryCapacity())
                fits = false;
            return;
        }
        const core::NodePlan &np = plan.nodePlan(id);
        const core::CondensedGraph &graph = problem.condensed();
        std::vector<core::DimScales> left(scales);
        std::vector<core::DimScales> right(scales);
        for (std::size_t v = 0; v < graph.size(); ++v) {
            const bool junction =
                graph.node(static_cast<core::CNodeId>(v)).junction;
            left[v] = core::childScales(scales[v], junction, np.types[v],
                                        np.alpha);
            right[v] = core::childScales(scales[v], junction,
                                         np.types[v], 1.0 - np.alpha);
        }
        walk(hn.left, left);
        walk(hn.right, right);
    }
};

} // namespace

TrainingRunResult
simulatePlan(const core::PartitionProblem &problem, std::int64_t batch,
             const hw::Hierarchy &hierarchy,
             const core::PartitionPlan &plan,
             const TrainingSimConfig &config)
{
    ACCPAR_REQUIRE(batch >= 1, "batch must be positive");

    TrainingRunResult result;
    result.strategyName = plan.strategyName();
    result.modelName = plan.modelName();

    const TraceStream trace =
        generateTraces(problem, hierarchy, plan, config.trace);
    result.timing = timeTrace(trace, hierarchy, config.engine);
    result.stepTime = result.timing.stepTime;
    ACCPAR_ASSERT(result.stepTime > 0.0, "simulated step time is zero");
    result.throughput = static_cast<double>(batch) / result.stepTime;

    MemoryWalker mem{problem, hierarchy, plan,
                     config.trace.bytesPerElement,
                     2.0 + optimizerStateCopies(config.trace.optimizer)};
    const std::vector<core::DimScales> unit(problem.condensed().size());
    mem.walk(hierarchy.root(), unit);
    result.peakLeafMemory = mem.peak;
    result.fitsMemory = mem.fits;
    if (!mem.fits) {
        ACCPAR_WARN("plan " << plan.strategyName() << " on "
                            << plan.modelName()
                            << " exceeds per-board HBM capacity");
    }
    return result;
}

TrainingRunResult
simulateStrategy(const graph::Graph &model, const hw::Hierarchy &hierarchy,
                 const strategies::Strategy &strategy,
                 const TrainingSimConfig &config)
{
    const core::PartitionProblem problem(model);
    const core::PartitionPlan plan = strategy.plan(problem, hierarchy);
    const std::int64_t batch =
        model.layer(model.inputLayer()).outputShape.n;
    return simulatePlan(problem, batch, hierarchy, plan, config);
}

} // namespace accpar::sim
