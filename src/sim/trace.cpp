#include "sim/trace.h"

#include "util/error.h"

namespace accpar::sim {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Forward:
        return "forward";
      case Phase::Backward:
        return "backward";
      case Phase::Gradient:
        return "gradient";
      case Phase::Update:
        return "update";
    }
    throw util::InternalError("unknown Phase");
}

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Mult:
        return "MULT";
      case TraceKind::Add:
        return "ADD";
      case TraceKind::LoadLocal:
        return "LOAD";
      case TraceKind::StoreLocal:
        return "STORE";
      case TraceKind::NetTransfer:
        return "NET";
    }
    throw util::InternalError("unknown TraceKind");
}

void
TraceStream::add(TraceRecord record)
{
    ACCPAR_ASSERT(record.amount >= 0.0, "negative trace amount");
    ACCPAR_ASSERT(record.granularity > 0.0,
                  "trace granularity must be positive");
    if (record.amount > 0.0)
        _records.push_back(record);
}

double
TraceStream::totalAmount(TraceKind kind) const
{
    double total = 0.0;
    for (const TraceRecord &r : _records)
        if (r.kind == kind)
            total += r.amount;
    return total;
}

double
TraceStream::totalAmountAt(TraceKind kind, hw::NodeId node) const
{
    double total = 0.0;
    for (const TraceRecord &r : _records)
        if (r.kind == kind && r.hierNode == node)
            total += r.amount;
    return total;
}

double
TraceStream::totalAmountAt(TraceKind kind, hw::NodeId node,
                           int side) const
{
    double total = 0.0;
    for (const TraceRecord &r : _records)
        if (r.kind == kind && r.hierNode == node && r.side == side)
            total += r.amount;
    return total;
}

} // namespace accpar::sim
