#include "sim/engine.h"

#include <algorithm>

#include "util/error.h"

namespace accpar::sim {

namespace {

/** Per-hierarchy-node accumulators gathered from the trace. */
struct NodeLoad
{
    util::Flops flops = 0.0;
    util::Bytes memoryBytes = 0.0;
    util::Bytes netBytes[2] = {0.0, 0.0}; ///< per child side
};

struct Timer
{
    const hw::Hierarchy &hierarchy;
    const EngineConfig &config;
    std::vector<NodeLoad> load;
    SimResult result;

    /** Returns the worst accumulated time in the subtree of @p id;
     *  @p net_above is the network time along ancestors. */
    util::Seconds
    walk(hw::NodeId id, util::Seconds net_above)
    {
        const hw::HierarchyNode &hn = hierarchy.node(id);
        const NodeLoad &l = load[id];

        if (hn.isLeaf()) {
            const hw::AcceleratorGroup &g = hn.group;
            const util::Seconds compute =
                l.flops / g.computeDensity();
            const util::Seconds memory =
                l.memoryBytes / g.memoryBandwidth();
            const util::Seconds execute =
                config.overlapComputeMemory ? std::max(compute, memory)
                                            : compute + memory;

            LeafTiming timing;
            timing.leaf = id;
            timing.flops = l.flops;
            timing.memoryBytes = l.memoryBytes;
            timing.executeTime = execute;
            timing.networkTime = net_above;
            result.leaves.push_back(timing);

            result.maxExecuteTime =
                std::max(result.maxExecuteTime, execute);
            result.maxNetworkTime =
                std::max(result.maxNetworkTime, net_above);
            return config.overlapNetworkCompute
                       ? std::max(execute, net_above)
                       : execute + net_above;
        }

        // Each side fetches remote data over its own group's aggregate
        // links (Eq. 7 with the group-level effective bandwidth).
        const util::Seconds left_net =
            l.netBytes[0] / hierarchy.node(hn.left).group.linkBandwidth();
        const util::Seconds right_net =
            l.netBytes[1] /
            hierarchy.node(hn.right).group.linkBandwidth();
        const auto level = static_cast<std::size_t>(hn.level);
        if (result.levelNetworkTime.size() <= level)
            result.levelNetworkTime.resize(level + 1, 0.0);
        result.levelNetworkTime[level] =
            std::max(result.levelNetworkTime[level],
                     std::max(left_net, right_net));
        return std::max(walk(hn.left, net_above + left_net),
                        walk(hn.right, net_above + right_net));
    }
};

} // namespace

SimResult
timeTrace(const TraceStream &trace, const hw::Hierarchy &hierarchy,
          const EngineConfig &config)
{
    Timer timer{hierarchy, config, {}, SimResult{}};
    timer.load.assign(hierarchy.nodeCount(), NodeLoad{});

    for (const TraceRecord &r : trace.records()) {
        ACCPAR_REQUIRE(r.hierNode >= 0 &&
                           static_cast<std::size_t>(r.hierNode) <
                               timer.load.size(),
                       "trace record references unknown hierarchy node "
                           << r.hierNode);
        NodeLoad &l = timer.load[r.hierNode];
        const int phase = static_cast<int>(r.phase);
        switch (r.kind) {
          case TraceKind::Mult:
          case TraceKind::Add:
            ACCPAR_REQUIRE(hierarchy.node(r.hierNode).isLeaf(),
                           "compute record on internal node");
            l.flops += r.amount;
            timer.result.totalFlops += r.amount;
            timer.result.phaseFlops[phase] += r.amount;
            break;
          case TraceKind::LoadLocal:
          case TraceKind::StoreLocal:
            ACCPAR_REQUIRE(hierarchy.node(r.hierNode).isLeaf(),
                           "memory record on internal node");
            l.memoryBytes += r.amount;
            timer.result.totalMemoryBytes += r.amount;
            break;
          case TraceKind::NetTransfer:
            ACCPAR_REQUIRE(!hierarchy.node(r.hierNode).isLeaf(),
                           "network record on leaf node");
            ACCPAR_REQUIRE(r.side == 0 || r.side == 1,
                           "invalid trace side " << r.side);
            l.netBytes[r.side] += r.amount;
            timer.result.totalNetworkBytes += r.amount;
            timer.result.phaseNetworkBytes[phase] += r.amount;
            break;
        }
    }

    timer.result.stepTime = timer.walk(hierarchy.root(), 0.0);
    return std::move(timer.result);
}

} // namespace accpar::sim
