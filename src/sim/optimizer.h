/**
 * @file
 * Optimizer models for the training-step simulator.
 *
 * The paper's three-phase flow covers "Gradient Descent, Stochastic
 * Gradient Descent, Mini-batch Gradient Descent, Momentum and Adam"
 * (§2.1): the tensor partitioning is identical, but optimizers differ
 * in (a) per-weight state they keep resident (velocity, moment
 * estimates) and (b) the element-wise work of the weight update. Both
 * affect the simulator: state inflates the per-board memory footprint,
 * the update adds a fourth per-layer phase of element-wise compute and
 * HBM traffic.
 */

#ifndef ACCPAR_SIM_OPTIMIZER_H
#define ACCPAR_SIM_OPTIMIZER_H

#include <string>

namespace accpar::sim {

/** Supported weight-update rules. */
enum class Optimizer
{
    Sgd,      ///< w -= lr * g
    Momentum, ///< v = y*v + lr*g; w -= v
    Adam,     ///< first + second moment estimates, bias correction
};

/** Lowercase name ("sgd", "momentum", "adam"). */
const char *optimizerName(Optimizer optimizer);

/** Parses an optimizer name; throws ConfigError on unknown input. */
Optimizer parseOptimizer(const std::string &name);

/**
 * Per-weight state tensors kept resident beyond the weight itself and
 * its gradient: 0 for SGD, 1 (velocity) for Momentum, 2 (m and v) for
 * Adam.
 */
int optimizerStateCopies(Optimizer optimizer);

/**
 * Element-wise FLOPs per weight element per update step:
 * SGD 2 (scale + subtract), Momentum 4, Adam 12 (moment updates, bias
 * correction, sqrt and divide counted as one FLOP each).
 */
double optimizerUpdateFlopsPerElement(Optimizer optimizer);

} // namespace accpar::sim

#endif // ACCPAR_SIM_OPTIMIZER_H
