/**
 * @file
 * Trace generation: turns (model, hierarchy, partition plan) into the
 * aggregate access/compute traces the timing engine consumes.
 *
 * Compute and local-memory records are emitted per hierarchy *leaf* (each
 * board executes its share, the product of the ratio scalings along its
 * root-to-leaf path). Network records are emitted per internal node and
 * side, with the amounts of Tables 4 and 5 evaluated at the dims that
 * hold at that level.
 */

#ifndef ACCPAR_SIM_TRACE_GEN_H
#define ACCPAR_SIM_TRACE_GEN_H

#include "core/hierarchical_solver.h"
#include "core/plan.h"
#include "hw/hierarchy.h"
#include "sim/optimizer.h"
#include "sim/trace.h"

namespace accpar::sim {

/** Trace generation configuration. */
struct TraceGenConfig
{
    /** bf16 by default (§6.1). */
    double bytesPerElement = 2.0;
    /** Also emit the element-wise work of junctions (residual adds). */
    bool traceJunctionAdds = true;
    /** Weight-update rule (adds the Update phase's work and traffic). */
    Optimizer optimizer = Optimizer::Sgd;
};

/** Generates the full one-step trace for @p plan. */
TraceStream generateTraces(const core::PartitionProblem &problem,
                           const hw::Hierarchy &hierarchy,
                           const core::PartitionPlan &plan,
                           const TraceGenConfig &config = {});

} // namespace accpar::sim

#endif // ACCPAR_SIM_TRACE_GEN_H
