/**
 * @file
 * The timing engine: converts a trace into wall-clock time using the
 * hardware rates (compute density, HBM bandwidth, link bandwidth) of the
 * hierarchy's groups — the "calculate the time consumed" half of the
 * paper's simulator (§6.1).
 *
 * Model: at a leaf, compute overlaps local memory traffic (systolic
 * arrays stream from HBM), so leaf time is max(flops/c, bytes/mem_bw)
 * per the roofline; network transfers do not overlap and serialize along
 * the hierarchy levels (hierarchical collectives). The step time is the
 * worst root-to-leaf accumulation.
 */

#ifndef ACCPAR_SIM_ENGINE_H
#define ACCPAR_SIM_ENGINE_H

#include <array>
#include <vector>

#include "hw/hierarchy.h"
#include "sim/trace.h"
#include "util/units.h"

namespace accpar::sim {

/** Engine configuration. */
struct EngineConfig
{
    /** Roofline overlap of compute and HBM traffic at the leaves. */
    bool overlapComputeMemory = true;
    /**
     * Sensitivity knob: overlap network transfers with execution
     * (per-board time = max of the two instead of their sum). Off by
     * default, matching the paper's additive cost model.
     */
    bool overlapNetworkCompute = false;
};

/** Timing of one leaf board. */
struct LeafTiming
{
    hw::NodeId leaf = hw::kInvalidNode;
    util::Flops flops = 0.0;
    util::Bytes memoryBytes = 0.0;
    /** Compute+memory execution time of this board's share. */
    util::Seconds executeTime = 0.0;
    /** Network time accumulated over all ancestor levels. */
    util::Seconds networkTime = 0.0;

    util::Seconds total() const { return executeTime + networkTime; }
};

/** Result of timing one trace. */
struct SimResult
{
    /** Wall-clock time of one training step. */
    util::Seconds stepTime = 0.0;
    /** Worst per-board execute (compute+memory) time. */
    util::Seconds maxExecuteTime = 0.0;
    /** Worst accumulated per-board network time. */
    util::Seconds maxNetworkTime = 0.0;
    /** Totals over the whole array. */
    util::Flops totalFlops = 0.0;
    util::Bytes totalMemoryBytes = 0.0;
    util::Bytes totalNetworkBytes = 0.0;
    /** Array-wide FLOPs per training phase (indexed by Phase). */
    std::array<util::Flops, kPhaseCount> phaseFlops{};
    /** Array-wide network bytes per training phase. */
    std::array<util::Bytes, kPhaseCount> phaseNetworkBytes{};
    /**
     * Worst per-side network time at each hierarchy level (level 0 is
     * the root pair). Shows where the communication bottleneck sits —
     * e.g. data parallelism's deepest-level gradient synchronization.
     */
    std::vector<util::Seconds> levelNetworkTime;
    /** Per-leaf detail, in hierarchy node id order. */
    std::vector<LeafTiming> leaves;
};

/** Times @p trace on @p hierarchy. */
SimResult timeTrace(const TraceStream &trace,
                    const hw::Hierarchy &hierarchy,
                    const EngineConfig &config = {});

} // namespace accpar::sim

#endif // ACCPAR_SIM_ENGINE_H
