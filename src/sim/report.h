/**
 * @file
 * Evaluation harness: runs a set of strategies over a set of models on
 * one accelerator array and produces the speedup-over-DP tables that
 * Figures 5, 6 and 8 of the paper plot.
 */

#ifndef ACCPAR_SIM_REPORT_H
#define ACCPAR_SIM_REPORT_H

#include <string>
#include <vector>

#include "hw/group.h"
#include "sim/training_sim.h"
#include "strategies/strategy.h"

namespace accpar::sim {

/** Speedups of every strategy on one model, normalized to the first
 *  strategy (DP in the paper's figures). */
struct SpeedupRow
{
    std::string model;
    std::vector<double> throughput; ///< samples/s per strategy
    std::vector<double> speedup;    ///< normalized to strategy 0
};

/** A whole figure's worth of speedups. */
struct SpeedupTable
{
    std::vector<std::string> strategyLabels;
    std::vector<SpeedupRow> rows;
    /** Geometric-mean speedup per strategy over all rows. */
    std::vector<double> geomean;
};

/**
 * Runs @p strategies on every model named in @p models (built at
 * @p batch) over the array @p array, normalizing to the first strategy.
 */
SpeedupTable
runSpeedupComparison(const std::vector<std::string> &models,
                     std::int64_t batch,
                     const hw::AcceleratorGroup &array,
                     const std::vector<strategies::StrategyPtr> &strategies,
                     const TrainingSimConfig &config = {});

/**
 * As above, with shared execution resources: each model's strategies
 * plan concurrently on the context's pool and share its memo cache.
 * The table is identical to the sequential overload's.
 */
SpeedupTable
runSpeedupComparison(const std::vector<std::string> &models,
                     std::int64_t batch,
                     const hw::AcceleratorGroup &array,
                     const std::vector<strategies::StrategyPtr> &strategies,
                     const TrainingSimConfig &config,
                     const core::SolveContext &context);

/** Renders the table in the format of the paper's figures. */
std::string formatSpeedupTable(const SpeedupTable &table,
                               const std::string &title);

/**
 * Renders the per-phase breakdown of one simulated run: FLOPs and
 * network bytes by training phase, plus the worst-board timing split.
 */
std::string formatRunBreakdown(const TrainingRunResult &run);

/** Writes the table as CSV (model, one column per strategy). */
void writeSpeedupCsv(const SpeedupTable &table, const std::string &path);

} // namespace accpar::sim

#endif // ACCPAR_SIM_REPORT_H
