#include "sim/optimizer.h"

#include "util/error.h"
#include "util/string_util.h"

namespace accpar::sim {

const char *
optimizerName(Optimizer optimizer)
{
    switch (optimizer) {
      case Optimizer::Sgd:
        return "sgd";
      case Optimizer::Momentum:
        return "momentum";
      case Optimizer::Adam:
        return "adam";
    }
    throw util::InternalError("unknown Optimizer");
}

Optimizer
parseOptimizer(const std::string &name)
{
    const std::string key = util::toLower(util::trim(name));
    if (key == "sgd")
        return Optimizer::Sgd;
    if (key == "momentum")
        return Optimizer::Momentum;
    if (key == "adam")
        return Optimizer::Adam;
    throw util::ConfigError("unknown optimizer '" + name + "'");
}

int
optimizerStateCopies(Optimizer optimizer)
{
    switch (optimizer) {
      case Optimizer::Sgd:
        return 0;
      case Optimizer::Momentum:
        return 1;
      case Optimizer::Adam:
        return 2;
    }
    throw util::InternalError("unknown Optimizer");
}

double
optimizerUpdateFlopsPerElement(Optimizer optimizer)
{
    switch (optimizer) {
      case Optimizer::Sgd:
        return 2.0;
      case Optimizer::Momentum:
        return 4.0;
      case Optimizer::Adam:
        return 12.0;
    }
    throw util::InternalError("unknown Optimizer");
}

} // namespace accpar::sim
