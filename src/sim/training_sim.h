/**
 * @file
 * The training-step simulator: end-to-end wrapper that plans (or accepts
 * a plan), traces, and times one DNN training step on an accelerator
 * array, producing the throughput numbers the paper's figures report.
 */

#ifndef ACCPAR_SIM_TRAINING_SIM_H
#define ACCPAR_SIM_TRAINING_SIM_H

#include <string>

#include "core/hierarchical_solver.h"
#include "core/plan.h"
#include "graph/graph.h"
#include "hw/hierarchy.h"
#include "sim/engine.h"
#include "sim/trace_gen.h"
#include "strategies/strategy.h"

namespace accpar::sim {

/** End-to-end simulation configuration. */
struct TrainingSimConfig
{
    TraceGenConfig trace;
    EngineConfig engine;
};

/** Result of simulating one strategy on one (model, array) pair. */
struct TrainingRunResult
{
    std::string strategyName;
    std::string modelName;
    /** Wall-clock seconds per training step. */
    util::Seconds stepTime = 0.0;
    /** Samples per second at the model's batch size. */
    double throughput = 0.0;
    /** Detailed timing. */
    SimResult timing;
    /** Worst per-board memory footprint (weights + activations + their
     *  gradients/errors, bf16). */
    util::Bytes peakLeafMemory = 0.0;
    /** True when every board's footprint fits its HBM capacity. */
    bool fitsMemory = true;
};

/**
 * Simulates one training step of @p model under @p plan.
 * @p batch is taken from the model's input shape.
 */
TrainingRunResult simulatePlan(const core::PartitionProblem &problem,
                               std::int64_t batch,
                               const hw::Hierarchy &hierarchy,
                               const core::PartitionPlan &plan,
                               const TrainingSimConfig &config = {});

/** Plans with @p strategy, then simulates. */
TrainingRunResult simulateStrategy(const graph::Graph &model,
                                   const hw::Hierarchy &hierarchy,
                                   const strategies::Strategy &strategy,
                                   const TrainingSimConfig &config = {});

} // namespace accpar::sim

#endif // ACCPAR_SIM_TRAINING_SIM_H
