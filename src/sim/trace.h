/**
 * @file
 * Trace model of the in-house simulator (paper §6.1).
 *
 * The paper's simulator "derives the tensor accessing traces (loading and
 * storing) and partial sum computation (MULT and ADD) traces ... and then
 * calculates the time consumed by the computation and data accessing".
 * We represent traces as aggregate records: one record counts a stream of
 * homogeneous events of a given kind at a given location. The trace
 * granularity matches the paper's: element-wise events for FC layers,
 * kernel-window events for CONV layers (the record keeps the ops/bytes
 * per event so tests can check both views).
 */

#ifndef ACCPAR_SIM_TRACE_H
#define ACCPAR_SIM_TRACE_H

#include <string>
#include <vector>

#include "core/condensed_graph.h"
#include "hw/hierarchy.h"
#include "util/units.h"

namespace accpar::sim {

/** Training phase of a record. */
enum class Phase
{
    Forward = 0,
    Backward = 1,
    Gradient = 2,
    Update = 3, ///< optimizer weight update (element-wise)
};

inline constexpr int kPhaseCount = 4;

/** Name of @p phase. */
const char *phaseName(Phase phase);

/** Event kind of a record. */
enum class TraceKind
{
    Mult,       ///< multiply ops (count = FLOPs)
    Add,        ///< accumulate ops (count = FLOPs)
    LoadLocal,  ///< local HBM reads (count = bytes)
    StoreLocal, ///< local HBM writes (count = bytes)
    NetTransfer ///< remote accesses over the network (count = bytes)
};

/** Name of @p kind. */
const char *traceKindName(TraceKind kind);

/** One aggregate trace record. */
struct TraceRecord
{
    /** Hierarchy location: a leaf for compute/memory, an internal node
     *  (the group pair) for network transfers. */
    hw::NodeId hierNode = hw::kInvalidNode;
    /** For NetTransfer: which child side pays the access (0 = left). */
    int side = 0;
    /** Condensed-graph node the record belongs to. */
    core::CNodeId cnode = -1;
    Phase phase = Phase::Forward;
    TraceKind kind = TraceKind::Mult;
    /** Total magnitude: FLOPs for Mult/Add, bytes otherwise. */
    double amount = 0.0;
    /** Magnitude per trace event (kernel-window size for CONV compute,
     *  1 element for FC compute, element size for accesses). */
    double granularity = 1.0;

    /** Number of individual trace events the record stands for. */
    double events() const { return amount / granularity; }
};

/** A full trace of one training step. */
class TraceStream
{
  public:
    void add(TraceRecord record);

    const std::vector<TraceRecord> &records() const { return _records; }
    std::size_t size() const { return _records.size(); }

    /** Sum of amounts over records matching @p kind. */
    double totalAmount(TraceKind kind) const;

    /** Sum of amounts of @p kind at hierarchy node @p node. */
    double totalAmountAt(TraceKind kind, hw::NodeId node) const;

    /** Sum of amounts of @p kind at @p node for child side @p side. */
    double totalAmountAt(TraceKind kind, hw::NodeId node, int side) const;

  private:
    std::vector<TraceRecord> _records;
};

} // namespace accpar::sim

#endif // ACCPAR_SIM_TRACE_H
