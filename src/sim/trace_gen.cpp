#include "sim/trace_gen.h"

#include <algorithm>

#include "core/cost_model.h"
#include "util/error.h"

namespace accpar::sim {

namespace {

using core::CNodeId;
using core::CondensedGraph;
using core::DimScales;
using core::LayerDims;
using core::PartitionType;

/** Intra-layer traffic happens in one phase per type (Table 4). */
Phase
intraPhase(PartitionType t)
{
    switch (t) {
      case PartitionType::TypeI:
        return Phase::Gradient;
      case PartitionType::TypeII:
        return Phase::Forward;
      case PartitionType::TypeIII:
        return Phase::Backward;
    }
    throw util::InternalError("unknown PartitionType");
}

struct Generator
{
    const core::PartitionProblem &problem;
    const hw::Hierarchy &hierarchy;
    const core::PartitionPlan &plan;
    const TraceGenConfig &config;
    TraceStream stream;

    /** Compute/memory records of one board's share of one layer. */
    void
    emitLeaf(hw::NodeId leaf, const std::vector<DimScales> &scales)
    {
        const CondensedGraph &graph = problem.condensed();
        const std::vector<LayerDims> dims =
            core::scaledDims(problem, scales);
        const double bpe = config.bytesPerElement;

        for (std::size_t v = 0; v < graph.size(); ++v) {
            const auto &node = graph.node(static_cast<CNodeId>(v));
            const LayerDims &d = dims[v];
            const double a_in = d.sizeInput();
            const double a_out = d.sizeOutput();
            const double a_w = d.sizeWeight();

            if (node.junction) {
                if (!config.traceJunctionAdds)
                    continue;
                // Element-wise join: one ADD, two loads and one store per
                // output element, forward pass only (the backward error
                // fan-out re-reads the same tensor).
                emit(leaf, 0, v, Phase::Forward, TraceKind::Add, a_out,
                     1.0);
                emit(leaf, 0, v, Phase::Forward, TraceKind::LoadLocal,
                     2.0 * a_out * bpe, bpe);
                emit(leaf, 0, v, Phase::Forward, TraceKind::StoreLocal,
                     a_out * bpe, bpe);
                continue;
            }

            // The paper's trace granularity: element-wise for FC,
            // kernel-window-wise for CONV (§6.1).
            const double gran = std::max(1.0, d.kernelArea);

            const double k_f = d.di * d.kernelArea;
            const double k_b = d.dOut * d.kernelArea;
            const double k_g = d.b * d.spatialOut;

            emitCompute(leaf, v, Phase::Forward, a_out, k_f, gran);
            emitCompute(leaf, v, Phase::Backward, a_in, k_b, gran);
            emitCompute(leaf, v, Phase::Gradient, a_w, k_g, gran);

            emitMemory(leaf, v, Phase::Forward, (a_in + a_w) * bpe,
                       a_out * bpe, bpe);
            emitMemory(leaf, v, Phase::Backward, (a_out + a_w) * bpe,
                       a_in * bpe, bpe);
            emitMemory(leaf, v, Phase::Gradient, (a_in + a_out) * bpe,
                       a_w * bpe, bpe);

            // Optimizer update: element-wise over this board's weight
            // shard, touching weight + gradient + optimizer state.
            const double state =
                optimizerStateCopies(config.optimizer);
            emit(leaf, 0, v, Phase::Update, TraceKind::Mult,
                 a_w * optimizerUpdateFlopsPerElement(config.optimizer),
                 1.0);
            emitMemory(leaf, v, Phase::Update,
                       (2.0 + state) * a_w * bpe,
                       (1.0 + state) * a_w * bpe, bpe);
        }
    }

    /** MULT/ADD records of one tensor multiplication with @p k-long
     *  reductions over @p out_elems outputs (Table 6 convention). */
    void
    emitCompute(hw::NodeId leaf, std::size_t v, Phase phase,
                double out_elems, double k, double gran)
    {
        if (out_elems <= 0.0 || k <= 0.0)
            return;
        emit(leaf, 0, v, phase, TraceKind::Mult, out_elems * k, gran);
        const double adds = out_elems * std::max(0.0, k - 1.0);
        emit(leaf, 0, v, phase, TraceKind::Add, adds, gran);
    }

    void
    emitMemory(hw::NodeId leaf, std::size_t v, Phase phase,
               double load_bytes, double store_bytes, double bpe)
    {
        emit(leaf, 0, v, phase, TraceKind::LoadLocal, load_bytes, bpe);
        emit(leaf, 0, v, phase, TraceKind::StoreLocal, store_bytes, bpe);
    }

    /** Network records of one internal node's partition decisions. */
    void
    emitNetwork(hw::NodeId id, const core::NodePlan &np,
                const std::vector<LayerDims> &dims)
    {
        const CondensedGraph &graph = problem.condensed();
        const double bpe = config.bytesPerElement;

        for (int side = 0; side < 2; ++side) {
            const double own = side == 0 ? np.alpha : 1.0 - np.alpha;
            const double other = 1.0 - own;
            for (std::size_t v = 0; v < graph.size(); ++v) {
                const auto &node = graph.node(static_cast<CNodeId>(v));
                const PartitionType t = np.types[v];
                if (!node.junction) {
                    const double intra =
                        core::PairCostModel::intraCommElements(t, dims[v]);
                    emit(id, side, v, intraPhase(t),
                         TraceKind::NetTransfer, intra * bpe, bpe);
                }
                for (CNodeId u : node.preds) {
                    const double boundary =
                        std::min(dims[u].sizeOutput(),
                                 dims[v].sizeInput());
                    const auto [f_part, e_part] =
                        core::PairCostModel::interCommElementsSplit(
                            np.types[u], t, boundary, own, other);
                    emit(id, side, v, Phase::Forward,
                         TraceKind::NetTransfer, f_part * bpe, bpe);
                    emit(id, side, v, Phase::Backward,
                         TraceKind::NetTransfer, e_part * bpe, bpe);
                }
            }
        }
    }

    void
    emit(hw::NodeId hier_node, int side, std::size_t cnode, Phase phase,
         TraceKind kind, double amount, double granularity)
    {
        TraceRecord r;
        r.hierNode = hier_node;
        r.side = side;
        r.cnode = static_cast<CNodeId>(cnode);
        r.phase = phase;
        r.kind = kind;
        r.amount = amount;
        r.granularity = granularity;
        stream.add(r);
    }

    void
    walk(hw::NodeId id, const std::vector<DimScales> &scales)
    {
        const hw::HierarchyNode &hn = hierarchy.node(id);
        if (hn.isLeaf()) {
            emitLeaf(id, scales);
            return;
        }

        const core::NodePlan &np = plan.nodePlan(id);
        const std::vector<LayerDims> dims =
            core::scaledDims(problem, scales);
        emitNetwork(id, np, dims);

        const CondensedGraph &graph = problem.condensed();
        std::vector<DimScales> left(scales);
        std::vector<DimScales> right(scales);
        for (std::size_t v = 0; v < graph.size(); ++v) {
            const bool junction =
                graph.node(static_cast<CNodeId>(v)).junction;
            left[v] = core::childScales(scales[v], junction, np.types[v],
                                        np.alpha);
            right[v] = core::childScales(scales[v], junction,
                                         np.types[v], 1.0 - np.alpha);
        }
        walk(hn.left, left);
        walk(hn.right, right);
    }
};

} // namespace

TraceStream
generateTraces(const core::PartitionProblem &problem,
               const hw::Hierarchy &hierarchy,
               const core::PartitionPlan &plan,
               const TraceGenConfig &config)
{
    ACCPAR_REQUIRE(config.bytesPerElement > 0.0,
                   "bytesPerElement must be positive");
    Generator gen{problem, hierarchy, plan, config, TraceStream{}};
    const std::vector<DimScales> unit(problem.condensed().size());
    gen.walk(hierarchy.root(), unit);
    return std::move(gen.stream);
}

} // namespace accpar::sim
