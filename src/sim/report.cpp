#include "sim/report.h"

#include <sstream>

#include "models/zoo.h"
#include "strategies/registry.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/table.h"

namespace accpar::sim {

SpeedupTable
runSpeedupComparison(const std::vector<std::string> &models,
                     std::int64_t batch,
                     const hw::AcceleratorGroup &array,
                     const std::vector<strategies::StrategyPtr> &strategies,
                     const TrainingSimConfig &config)
{
    return runSpeedupComparison(models, batch, array, strategies,
                                config, core::SolveContext{});
}

SpeedupTable
runSpeedupComparison(const std::vector<std::string> &models,
                     std::int64_t batch,
                     const hw::AcceleratorGroup &array,
                     const std::vector<strategies::StrategyPtr> &strategies,
                     const TrainingSimConfig &config,
                     const core::SolveContext &context)
{
    ACCPAR_REQUIRE(!strategies.empty(), "no strategies given");
    ACCPAR_REQUIRE(!models.empty(), "no models given");

    const hw::Hierarchy hierarchy(array);

    SpeedupTable table;
    for (const strategies::StrategyPtr &s : strategies)
        table.strategyLabels.push_back(s->label());

    for (const std::string &model_name : models) {
        const graph::Graph model = models::buildModel(model_name, batch);
        const std::int64_t model_batch =
            model.layer(model.inputLayer()).outputShape.n;
        const core::PartitionProblem problem(model);
        const std::vector<core::PartitionPlan> plans =
            strategies::planAll(strategies, problem, hierarchy,
                                context);
        SpeedupRow row;
        row.model = model_name;
        for (const core::PartitionPlan &plan : plans) {
            const TrainingRunResult run = simulatePlan(
                problem, model_batch, hierarchy, plan, config);
            row.throughput.push_back(run.throughput);
        }
        const double base = row.throughput.front();
        for (double t : row.throughput)
            row.speedup.push_back(t / base);
        table.rows.push_back(std::move(row));
    }

    for (std::size_t s = 0; s < strategies.size(); ++s) {
        std::vector<double> column;
        for (const SpeedupRow &row : table.rows)
            column.push_back(row.speedup[s]);
        table.geomean.push_back(util::geometricMean(column));
    }
    return table;
}

std::string
formatSpeedupTable(const SpeedupTable &table, const std::string &title)
{
    std::vector<std::string> header = {"network"};
    header.insert(header.end(), table.strategyLabels.begin(),
                  table.strategyLabels.end());
    util::Table out(header);
    for (const SpeedupRow &row : table.rows)
        out.addRow(row.model, row.speedup, 4);
    out.addRow("geomean", table.geomean, 4);

    std::ostringstream os;
    os << title << '\n';
    out.print(os);
    return os.str();
}

std::string
formatRunBreakdown(const TrainingRunResult &run)
{
    util::Table table({"phase", "FLOPs", "network"});
    for (int p = 0; p < kPhaseCount; ++p) {
        table.addRow(
            {phaseName(static_cast<Phase>(p)),
             util::humanFlops(run.timing.phaseFlops[p]),
             util::humanBytes(run.timing.phaseNetworkBytes[p])});
    }
    std::ostringstream os;
    os << run.strategyName << " on " << run.modelName << ": step "
       << util::humanSeconds(run.stepTime) << " (execute "
       << util::humanSeconds(run.timing.maxExecuteTime) << ", network "
       << util::humanSeconds(run.timing.maxNetworkTime) << ")\n";
    table.print(os);
    os << "network time by hierarchy level:";
    for (std::size_t level = 0;
         level < run.timing.levelNetworkTime.size(); ++level) {
        os << "  L" << level << " "
           << util::humanSeconds(run.timing.levelNetworkTime[level]);
    }
    os << '\n';
    return os.str();
}

void
writeSpeedupCsv(const SpeedupTable &table, const std::string &path)
{
    std::vector<std::string> header = {"network"};
    header.insert(header.end(), table.strategyLabels.begin(),
                  table.strategyLabels.end());
    util::CsvWriter csv(header);
    for (const SpeedupRow &row : table.rows)
        csv.addRow(row.model, row.speedup);
    csv.addRow("geomean", table.geomean);
    csv.writeFile(path);
}

} // namespace accpar::sim
