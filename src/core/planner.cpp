#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "analysis/plan_verifier.h"
#include "search/annealing.h"
#include "strategies/registry.h"
#include "util/error.h"

namespace accpar {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
}

core::CostCacheStats
statsDelta(const core::CostCacheStats &before,
           const core::CostCacheStats &after)
{
    core::CostCacheStats delta;
    delta.hits = after.hits - before.hits;
    delta.misses = after.misses - before.misses;
    return delta;
}

/** Appends a double as its exact shortest round-trippable decimal. */
void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendShape(std::string &out, const graph::TensorShape &shape)
{
    out += std::to_string(shape.n) + 'x' + std::to_string(shape.c) +
           'x' + std::to_string(shape.h) + 'x' +
           std::to_string(shape.w);
}

/**
 * Appends the canonical encoding of a model graph (layers, attributes,
 * wiring, shapes). Shared between planRequestCanonicalKey and
 * Planner::planBatch's problem deduplication: two requests whose model
 * keys match build identical PartitionProblems.
 */
void
appendModelKey(std::string &key, const graph::Graph &model)
{
    key += model.name();
    for (const graph::Layer &layer : model.layers()) {
        key += ';';
        key += graph::layerKindName(layer.kind);
        key += ':';
        key += layer.name;
        key += ':';
        for (graph::LayerId input : layer.inputs) {
            key += std::to_string(input);
            key += ',';
        }
        key += ':';
        appendShape(key, layer.outputShape);
        if (const auto *conv =
                std::get_if<graph::ConvAttrs>(&layer.attrs)) {
            key += ":c";
            for (std::int64_t v :
                 {conv->outChannels, conv->kernelH, conv->kernelW,
                  conv->strideH, conv->strideW, conv->padH,
                  conv->padW}) {
                key += std::to_string(v);
                key += ',';
            }
        } else if (const auto *fc =
                       std::get_if<graph::FcAttrs>(&layer.attrs)) {
            key += ":f";
            key += std::to_string(fc->outFeatures);
        } else if (const auto *pool =
                       std::get_if<graph::PoolAttrs>(&layer.attrs)) {
            key += ":p";
            for (std::int64_t v :
                 {pool->kernelH, pool->kernelW, pool->strideH,
                  pool->strideW, pool->padH, pool->padW}) {
                key += std::to_string(v);
                key += ',';
            }
        }
    }
}

} // namespace

PlanRequest::PlanRequest(const std::string &modelName,
                         const models::ModelParams &params,
                         hw::AcceleratorGroup array_)
    : model(models::catalog().build(modelName, params)),
      array(std::move(array_))
{
}

std::string
planRequestCanonicalKey(const PlanRequest &request)
{
    std::string key;
    key.reserve(1024);

    key += "v1;strategy=";
    key += request.strategy;

    // The search options only steer the solve for "custom"; named
    // strategies carry their own canonical knobs, so folding the
    // options in would needlessly split their cache entries.
    if (request.strategy == "custom") {
        const PlanOptions &o = request.options;
        key += ";opts=";
        key += std::to_string(static_cast<int>(o.objective));
        key += ',';
        key += std::to_string(static_cast<int>(o.reduce));
        key += ',';
        key += o.includeCompute ? '1' : '0';
        key += ',';
        appendDouble(key, o.bytesPerElement);
        key += ',';
        key += std::to_string(static_cast<int>(o.ratioPolicy));
        key += ',';
        key += std::to_string(o.ratioIterations);
        key += ',';
        appendDouble(key, o.minDimPerSide);
        if (o.allowedTypes)
            key += ",allowed-types:opaque";
    }
    key += ";verify=";
    key += request.options.verify ? '1' : '0';
    key += request.options.strict ? 'S' : '-';

    // The outer-search budget changes the produced plan for every
    // strategy that supports it, so it lives outside the "custom"-only
    // opts block above.
    if (request.options.search.enabled()) {
        const PlanOptions::SearchBudget &s = request.options.search;
        key += ";search=";
        key += std::to_string(s.budgetIters);
        key += ',';
        appendDouble(key, s.budgetMs);
        key += ",seed:";
        key += std::to_string(s.seed);
    }

    key += ";array=";
    for (const hw::GroupSlice &slice : request.array.slices()) {
        key += slice.spec.name;
        key += ':';
        key += std::to_string(slice.count);
        key += ':';
        appendDouble(key, slice.spec.computeDensity);
        key += ':';
        appendDouble(key, slice.spec.memoryCapacity);
        key += ':';
        appendDouble(key, slice.spec.memoryBandwidth);
        key += ':';
        appendDouble(key, slice.spec.linkBandwidth);
        key += '|';
    }
    key += "agg=";
    key += std::to_string(
        static_cast<int>(request.array.linkAggregation()));

    key += ";model=";
    appendModelKey(key, request.model);
    return key;
}

std::uint64_t
planRequestFingerprint(const PlanRequest &request)
{
    const std::string key = planRequestCanonicalKey(request);
    std::uint64_t hash = 14695981039346656037ull;
    for (char c : key) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

core::SolverOptions
PlanOptions::toSolverOptions(const std::string &strategy) const
{
    core::SolverOptions opts;
    opts.cost.objective = objective;
    opts.cost.reduce = reduce;
    opts.cost.includeCompute = includeCompute;
    opts.cost.bytesPerElement = bytesPerElement;
    opts.ratioPolicy = ratioPolicy;
    opts.ratioIterations = ratioIterations;
    opts.allowedTypes = allowedTypes;
    opts.minDimPerSide = minDimPerSide;
    opts.strategyName = strategy;
    return opts;
}

PlanOptions
PlanOptions::fromSolverOptions(const core::SolverOptions &opts)
{
    PlanOptions out;
    out.objective = opts.cost.objective;
    out.reduce = opts.cost.reduce;
    out.includeCompute = opts.cost.includeCompute;
    out.bytesPerElement = opts.cost.bytesPerElement;
    out.ratioPolicy = opts.ratioPolicy;
    out.ratioIterations = opts.ratioIterations;
    out.allowedTypes = opts.allowedTypes;
    out.minDimPerSide = opts.minDimPerSide;
    return out;
}

Planner::Planner() = default;
Planner::~Planner() = default;

int
Planner::effectiveJobs(int jobs)
{
    ACCPAR_REQUIRE(jobs >= 0, "jobs must be >= 0 (0 = all hardware "
                              "threads), got "
                                  << jobs);
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

util::ThreadPool *
Planner::poolFor(int jobs)
{
    const int effective = effectiveJobs(jobs);
    if (effective <= 1)
        return nullptr;
    if (!_pool || _poolJobs != effective) {
        _pool = std::make_unique<util::ThreadPool>(effective);
        _poolJobs = effective;
    }
    return _pool.get();
}

PlanResult
Planner::planOne(const PlanRequest &request,
                 const core::PartitionProblem &problem,
                 const hw::Hierarchy &hierarchy,
                 const core::SolveContext &context)
{
    const auto start = std::chrono::steady_clock::now();

    PlanResult result;

    // Outer-loop search: anneal over hierarchy shapes and device
    // assignments first, then let the request's strategy re-solve the
    // winning hierarchy below — that final solve is the one that gets
    // verified and certified, and it is bit-identical to the search's
    // own evaluation of the winner.
    const hw::Hierarchy *solve_hierarchy = &hierarchy;
    if (request.options.search.enabled()) {
        if (request.strategy != "accpar" && request.strategy != "custom")
            throw util::ConfigError(
                "outer search supports strategies 'accpar' and "
                "'custom' only, got '" +
                request.strategy + "'");
        search::SearchOptions search_options;
        search_options.seed = request.options.search.seed;
        search_options.budgetIters = request.options.search.budgetIters;
        search_options.budgetMs = request.options.search.budgetMs;
        // Named "accpar" carries its canonical knobs; only "custom"
        // honors the request's PlanOptions (mirrors the solve below).
        search_options.solver =
            (request.strategy == "custom" ? request.options
                                          : PlanOptions())
                .toSolverOptions(request.strategy);
        search::SearchOutcome outcome =
            search::AnnealingDriver(problem, request.array,
                                    search_options)
                .run(context);
        result.searchedHierarchy = std::make_shared<hw::Hierarchy>(
            std::move(outcome.bestHierarchy));
        result.searchReport = std::make_shared<search::SearchReport>(
            std::move(outcome.report));
        solve_hierarchy = result.searchedHierarchy.get();
    }

    core::SolveContext solve_context = context;
    if (request.options.emitCertificate) {
        result.certificate = std::make_shared<core::PlanCertificate>();
        solve_context.certificate = result.certificate.get();
    }
    core::CostModelConfig search_cost;
    if (request.strategy == "custom") {
        const core::SolverOptions opts =
            request.options.toSolverOptions(request.strategy);
        search_cost = opts.cost;
        result.plan = core::solveHierarchy(problem, *solve_hierarchy,
                                           opts, solve_context);
    } else {
        const strategies::StrategyPtr strategy =
            strategies::makeStrategy(request.strategy);
        search_cost = strategy->costConfig();
        result.plan =
            strategy->plan(problem, *solve_hierarchy, solve_context);
    }

    if (request.options.verify) {
        analysis::DiagnosticSink sink;
        analysis::VerifyOptions verify;
        verify.cost = search_cost;
        analysis::verifyPlan(problem, *solve_hierarchy, result.plan,
                             verify, sink);
        sink.sort();
        result.diagnostics = sink.diagnostics();
        if (sink.failsStrict(request.options.strict)) {
            throw util::ConfigError(
                "plan verification failed (strategy '" +
                result.plan.strategyName() + "', model '" +
                request.model.name() + "'):\n" + sink.renderText());
        }
    }

    result.strategy = result.plan.strategyName();
    result.model = request.model.name();
    const hw::NodeId root = solve_hierarchy->root();
    if (result.plan.hasNodePlan(root))
        result.rootCost = result.plan.nodePlan(root).cost;
    for (const core::NodePlan *node :
         result.plan.leftmostPath(*solve_hierarchy))
        result.levelCosts.push_back(node->cost);
    result.planSeconds = secondsSince(start);
    result.jobs = context.pool ? context.pool->concurrency() : 1;
    return result;
}

PlanResult
Planner::plan(const PlanRequest &request)
{
    const core::PartitionProblem problem(request.model);
    const hw::Hierarchy hierarchy(request.array);
    const core::SolveContext context{poolFor(request.jobs), &_cache};

    const core::CostCacheStats before = _cache.stats();
    PlanResult result = planOne(request, problem, hierarchy, context);
    result.cacheDelta = statsDelta(before, _cache.stats());
    return result;
}

std::vector<PlanResult>
Planner::planBatch(const std::vector<PlanRequest> &requests)
{
    if (requests.empty())
        return {};

    int jobs = 1;
    for (const PlanRequest &request : requests)
        jobs = std::max(jobs, effectiveJobs(request.jobs));
    util::ThreadPool *pool = poolFor(jobs);
    const core::SolveContext context{pool, &_cache};

    // Build each distinct model's PartitionProblem exactly once, up
    // front and serially: condensation, the series-parallel
    // decomposition and the compiled DP structure (DpStructure — the
    // edge CSR and chain mirror every DpKernel borrows) are the
    // per-request setup cost a sweep repeats, and the finished
    // problems are read-only during the solves so requests sharing a
    // model can safely share one instance across threads.
    std::vector<std::unique_ptr<core::PartitionProblem>> problems;
    std::vector<std::size_t> problem_of(requests.size());
    std::unordered_map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::string model_key;
        appendModelKey(model_key, requests[i].model);
        const auto [it, inserted] =
            index.emplace(std::move(model_key), problems.size());
        if (inserted)
            problems.push_back(std::make_unique<core::PartitionProblem>(
                requests[i].model));
        problem_of[i] = it->second;
    }

    const core::CostCacheStats before = _cache.stats();
    std::vector<PlanResult> results(requests.size());
    util::parallelFor(pool, requests.size(), [&](std::size_t i) {
        const hw::Hierarchy hierarchy(requests[i].array);
        results[i] = planOne(requests[i], *problems[problem_of[i]],
                             hierarchy, context);
    });
    const core::CostCacheStats delta =
        statsDelta(before, _cache.stats());
    for (PlanResult &result : results)
        result.cacheDelta = delta;
    return results;
}

StrategyComparison
Planner::compare(const PlanRequest &request)
{
    const core::PartitionProblem problem(request.model);
    const hw::Hierarchy hierarchy(request.array);
    util::ThreadPool *pool = poolFor(request.jobs);
    const core::SolveContext context{pool, &_cache};

    const std::vector<strategies::StrategyPtr> strategies =
        strategies::defaultStrategies();

    const core::CostCacheStats before = _cache.stats();
    StrategyComparison comparison;
    comparison.plans.resize(strategies.size());
    util::parallelFor(pool, strategies.size(), [&](std::size_t i) {
        PlanRequest one = request;
        one.strategy = strategies[i]->name();
        comparison.plans[i] =
            planOne(one, problem, hierarchy, context);
    });
    const core::CostCacheStats delta =
        statsDelta(before, _cache.stats());

    const std::int64_t batch =
        request.model.layer(request.model.inputLayer()).outputShape.n;
    for (PlanResult &plan : comparison.plans) {
        plan.cacheDelta = delta;
        comparison.runs.push_back(sim::simulatePlan(
            problem, batch, hierarchy, plan.plan, request.sim));
    }

    const double base = comparison.runs.front().throughput;
    for (const sim::TrainingRunResult &run : comparison.runs)
        comparison.speedup.push_back(
            base > 0.0 ? run.throughput / base : 0.0);
    return comparison;
}

SimulationResult
Planner::simulate(const PlanRequest &request)
{
    const core::PartitionProblem problem(request.model);
    const hw::Hierarchy hierarchy(request.array);
    const core::SolveContext context{poolFor(request.jobs), &_cache};

    const core::CostCacheStats before = _cache.stats();
    SimulationResult result;
    result.plan = planOne(request, problem, hierarchy, context);
    result.plan.cacheDelta = statsDelta(before, _cache.stats());

    const std::int64_t batch =
        request.model.layer(request.model.inputLayer()).outputShape.n;
    result.run = sim::simulatePlan(problem, batch, hierarchy,
                                   result.plan.plan, request.sim);
    return result;
}

} // namespace accpar
