/**
 * @file
 * The AVX2 kernel table. This translation unit is the only one built
 * with the AVX2 target flags (and with floating-point contraction
 * disabled, so no mul+add pair ever fuses — see util/simd.h's
 * bit-identity contract); builds without ACCPAR_SIMD, or for other
 * architectures, compile the null stub instead and the dispatcher
 * falls back to scalar or NEON.
 */

#include "core/batch_kernels.h"

#if defined(ACCPAR_SIMD_ENABLED) && defined(__AVX2__)

#include "core/batch_kernels_impl.h"

namespace accpar::core {

namespace {

constexpr BatchKernelOps kAvx2Ops = {
    "avx2", util::simd::kLanes,
    &kernels::candidates9<util::simd::avx2::Vec4>,
    &kernels::ratioBothSides<util::simd::avx2::Vec4>};

} // namespace

const BatchKernelOps *
avx2BatchKernelOps()
{
    return &kAvx2Ops;
}

} // namespace accpar::core

#else // !(ACCPAR_SIMD_ENABLED && __AVX2__)

namespace accpar::core {

const BatchKernelOps *
avx2BatchKernelOps()
{
    return nullptr;
}

} // namespace accpar::core

#endif
