#include "core/chain_dp.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <tuple>
#include <utility>

#include "util/error.h"

namespace accpar::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** (node, chosen type) pairs accumulated during backtracking. */
using Assignment = std::vector<std::pair<CNodeId, PartitionType>>;

/** Shared context of one DP run. */
struct DpContext
{
    const CondensedGraph &graph;
    const std::vector<LayerDims> &dims;
    const PairCostModel &model;
    const TypeRestrictions &allowed;

    /**
     * A(F) = A(E) of the boundary tensor on edge @p producer ->
     * @p consumer: the smaller of the producer's output and the
     * consumer's input view. They coincide on plain chains; pooling
     * boundaries convert the (smaller) post-pool tensor, and edges
     * into a Concat junction carry only the producing path's slice.
     */
    double
    boundaryElems(CNodeId producer, CNodeId consumer) const
    {
        return std::min(dims[producer].sizeOutput(),
                        dims[consumer].sizeInput());
    }

    double
    nodeCost(CNodeId node, PartitionType t) const
    {
        const CondensedNode &n = graph.node(node);
        return model.nodeCost(node, dims[node], n.junction, t);
    }

    double
    transitionCost(PartitionType from, PartitionType to,
                   CNodeId producer, CNodeId consumer) const
    {
        return model.transitionCost(producer, from, to,
                                    boundaryElems(producer, consumer));
    }
};

/** DP state per element: best cost and assignment per partition type. */
struct StateRow
{
    std::array<double, kPartitionTypeCount> cost;
    std::array<Assignment, kPartitionTypeCount> assign;

    StateRow() { cost.fill(kInf); }
};

StateRow solveChainStates(const DpContext &ctx, const Chain &chain,
                          std::optional<PartitionType> entry,
                          CNodeId entry_node);

/**
 * Transition cost and internal assignment of a parallel element when the
 * fork (@p fork, state @p tt) feeds the join (state @p t): the per-path
 * minima of Figure 4, summed over paths.
 */
std::pair<double, Assignment>
parallelTransition(const DpContext &ctx, const Element &element,
                   CNodeId fork, PartitionType tt, PartitionType t)
{
    double total = 0.0;
    Assignment inner;
    for (const Chain &path : element.paths) {
        if (path.elements.empty()) {
            // Identity shortcut: the fork tensor converts straight into
            // the join's partitioning.
            total += ctx.transitionCost(tt, t, fork, element.node);
            continue;
        }
        const StateRow states = solveChainStates(ctx, path, tt, fork);
        const CNodeId last = path.elements.back().node;
        double best = kInf;
        int best_s = -1;
        for (PartitionType s : ctx.allowed[last]) {
            const int si = partitionTypeIndex(s);
            if (states.cost[si] == kInf)
                continue;
            const double cand =
                states.cost[si] +
                ctx.transitionCost(s, t, last, element.node);
            if (cand < best) {
                best = cand;
                best_s = si;
            }
        }
        ACCPAR_ASSERT(best_s >= 0, "parallel path has no feasible state");
        total += best;
        inner.insert(inner.end(), states.assign[best_s].begin(),
                     states.assign[best_s].end());
    }
    return {total, std::move(inner)};
}

/**
 * Runs the DP over one chain. When @p entry is set, the chain hangs off a
 * fork in state *entry, and the first element pays the conversion from
 * that state; otherwise the chain starts the model and pays no incoming
 * conversion (Eq. 9's c(L_0, t) = 0 initialization).
 */
StateRow
solveChainStates(const DpContext &ctx, const Chain &chain,
                 std::optional<PartitionType> entry, CNodeId entry_node)
{
    ACCPAR_ASSERT(!chain.elements.empty(), "empty chain in DP");

    StateRow cur;
    bool first = true;
    for (const Element &element : chain.elements) {
        const CNodeId node = element.node;
        ACCPAR_ASSERT(!ctx.allowed[node].empty(),
                      "node " << ctx.graph.node(node).name
                              << " has no allowed types");
        StateRow next;

        if (first) {
            ACCPAR_ASSERT(!element.isParallel(),
                          "a chain cannot start with a parallel element");
            for (PartitionType t : ctx.allowed[node]) {
                const int ti = partitionTypeIndex(t);
                double cost = ctx.nodeCost(node, t);
                if (entry)
                    cost +=
                        ctx.transitionCost(*entry, t, entry_node, node);
                next.cost[ti] = cost;
                next.assign[ti] = {{node, t}};
            }
            first = false;
            cur = std::move(next);
            continue;
        }

        const Element &prev_element =
            chain.elements[static_cast<std::size_t>(
                &element - chain.elements.data()) - 1];
        const CNodeId prev = prev_element.node;

        for (PartitionType t : ctx.allowed[node]) {
            const int ti = partitionTypeIndex(t);
            const double node_cost = ctx.nodeCost(node, t);
            double best = kInf;
            int best_tt = -1;
            Assignment best_inner;
            for (PartitionType tt : ctx.allowed[prev]) {
                const int tti = partitionTypeIndex(tt);
                if (cur.cost[tti] == kInf)
                    continue;
                double trans;
                Assignment inner;
                if (element.isParallel()) {
                    std::tie(trans, inner) =
                        parallelTransition(ctx, element, prev, tt, t);
                } else {
                    trans = ctx.transitionCost(tt, t, prev, node);
                }
                const double cand = cur.cost[tti] + trans + node_cost;
                if (cand < best) {
                    best = cand;
                    best_tt = tti;
                    best_inner = std::move(inner);
                }
            }
            if (best_tt < 0)
                continue;
            next.cost[ti] = best;
            next.assign[ti] = cur.assign[best_tt];
            next.assign[ti].insert(next.assign[ti].end(),
                                   best_inner.begin(), best_inner.end());
            next.assign[ti].emplace_back(node, t);
        }
        cur = std::move(next);
    }
    return cur;
}

} // namespace

TypeRestrictions
unrestrictedTypes(const CondensedGraph &graph)
{
    TypeRestrictions out(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i)
        out[i].assign(kAllPartitionTypes.begin(), kAllPartitionTypes.end());
    return out;
}

ChainDpResult
solveChainDp(const CondensedGraph &graph, const Chain &chain,
             const std::vector<LayerDims> &dims,
             const PairCostModel &model, const TypeRestrictions &allowed)
{
    ACCPAR_REQUIRE(dims.size() == graph.size(),
                   "dims size mismatch: " << dims.size() << " vs "
                                          << graph.size());
    ACCPAR_REQUIRE(allowed.size() == graph.size(),
                   "type restriction size mismatch");

    const DpContext ctx{graph, dims, model, allowed};
    const StateRow states =
        solveChainStates(ctx, chain, std::nullopt, -1);

    const CNodeId last = chain.elements.back().node;
    double best = kInf;
    int best_t = -1;
    for (PartitionType t : ctx.allowed[last]) {
        const int ti = partitionTypeIndex(t);
        if (states.cost[ti] < best) {
            best = states.cost[ti];
            best_t = ti;
        }
    }
    ACCPAR_ASSERT(best_t >= 0, "DP found no feasible assignment");

    ChainDpResult result;
    result.cost = best;
    result.types.assign(graph.size(), PartitionType::TypeI);
    std::vector<bool> set(graph.size(), false);
    for (const auto &[node, type] : states.assign[best_t]) {
        result.types[node] = type;
        set[node] = true;
    }
    for (std::size_t i = 0; i < graph.size(); ++i)
        ACCPAR_ASSERT(set[i], "DP left node " << graph.node(
                                     static_cast<CNodeId>(i))
                                     .name << " unassigned");
    return result;
}

double
evaluateAssignment(const CondensedGraph &graph,
                   const std::vector<LayerDims> &dims,
                   const PairCostModel &model,
                   const std::vector<PartitionType> &types)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.nodeCost(static_cast<CNodeId>(v), dims[v],
                                node.junction, types[v]);
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            total += model.transitionCost(u, types[u], types[v], boundary);
        }
    }
    return total;
}

} // namespace accpar::core
