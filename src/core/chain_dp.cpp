#include "core/chain_dp.h"

#include <algorithm>

#include "core/dp_kernel.h"
#include "util/error.h"

namespace accpar::core {

TypeRestrictions
unrestrictedTypes(const CondensedGraph &graph)
{
    TypeRestrictions out(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i)
        out[i].assign(kAllPartitionTypes.begin(), kAllPartitionTypes.end());
    return out;
}

ChainDpResult
solveChainDp(const CondensedGraph &graph, const Chain &chain,
             const std::vector<LayerDims> &dims,
             const PairCostModel &model, const TypeRestrictions &allowed)
{
    // One-shot entry point: compiles a kernel for this triple and
    // solves once. The hierarchical solver keeps its own kernel alive
    // across the adaptive-ratio iterations instead.
    DpKernel kernel(graph, chain, dims);
    return kernel.solve(model, allowed);
}

double
evaluateAssignment(const CondensedGraph &graph,
                   const std::vector<LayerDims> &dims,
                   const PairCostModel &model,
                   const std::vector<PartitionType> &types)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.nodeCost(static_cast<CNodeId>(v), dims[v],
                                node.junction, types[v]);
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            total += model.transitionCost(u, types[u], types[v], boundary);
        }
    }
    return total;
}

} // namespace accpar::core
