#include "core/partition_type.h"

#include "util/error.h"

namespace accpar::core {

PartitionType
partitionTypeFromIndex(int index)
{
    ACCPAR_REQUIRE(index >= 0 && index < kPartitionTypeCount,
                   "partition type index out of range: " << index);
    return static_cast<PartitionType>(index);
}

const char *
partitionTypeName(PartitionType t)
{
    switch (t) {
      case PartitionType::TypeI:
        return "Type-I";
      case PartitionType::TypeII:
        return "Type-II";
      case PartitionType::TypeIII:
        return "Type-III";
    }
    throw util::InternalError("unknown PartitionType");
}

const char *
partitionTypeTag(PartitionType t)
{
    switch (t) {
      case PartitionType::TypeI:
        return "I";
      case PartitionType::TypeII:
        return "II";
      case PartitionType::TypeIII:
        return "III";
    }
    throw util::InternalError("unknown PartitionType");
}

std::string
formatTypeSequence(const std::vector<PartitionType> &types)
{
    std::string out;
    for (std::size_t i = 0; i < types.size(); ++i) {
        if (i)
            out += ',';
        out += partitionTypeTag(types[i]);
    }
    return out;
}

} // namespace accpar::core
