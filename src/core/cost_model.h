/**
 * @file
 * The AccPar cost model (paper §4).
 *
 * Costs combine communication (Eq. 7: bytes over the accessing group's
 * link bandwidth) and computation (Eq. 8: the group's ratio share of the
 * layer's FLOPs over its compute density). The communication amounts come
 * from Table 4 (intra-layer, one phase per partition type) and Table 5
 * (inter-layer, nine type-transition patterns); the FLOP counts come from
 * Table 6 with the CONV extension of §4.3.
 *
 * The same class also implements the HyPar-style objective (communication
 * amount as a proxy for performance, no computation term) used by the
 * baseline reimplementation.
 */

#ifndef ACCPAR_CORE_COST_MODEL_H
#define ACCPAR_CORE_COST_MODEL_H

#include <cstdint>
#include <utility>

#include "core/layer_dims.h"
#include "core/partition_type.h"
#include "util/units.h"

namespace accpar::core {

class CostCache;

/** What the per-layer scalar cost measures. */
enum class ObjectiveKind
{
    /** Seconds: computation + communication (AccPar). */
    Time,
    /** Transferred elements only, ratio-free (HyPar's proxy). */
    CommAmount,
};

/** How the two sides' costs combine into one scalar for the DP. */
enum class PairReduce
{
    Max, ///< balanced-makespan view (AccPar default)
    Sum, ///< total work view (used with CommAmount)
};

/** One side of a group pair, reduced to the two rates the model needs. */
struct GroupRates
{
    util::FlopsPerSecond compute = 0.0;   ///< c_i (Eq. 8)
    util::BytesPerSecond link = 0.0;      ///< b_i (Eq. 7)
};

/**
 * Cost model configuration.
 *
 * Deprecated as a user-facing surface: kept as the cost-model half of
 * the old SolverOptions/CostModelConfig split so existing callers and
 * tests compile unchanged. New code sets the same knobs on the flat
 * accpar::PlanOptions (core/planner.h).
 */
struct CostModelConfig
{
    ObjectiveKind objective = ObjectiveKind::Time;
    PairReduce reduce = PairReduce::Max;
    /** Ablation switch: drop the computation term of the Time objective. */
    bool includeCompute = true;
    /** bf16 by default (§6.1). */
    double bytesPerElement = 2.0;
};

/** Identifies one side of a pair. */
enum class Side { Left = 0, Right = 1 };

/** The other side. */
constexpr Side
oppositeSide(Side s)
{
    return s == Side::Left ? Side::Right : Side::Left;
}

/**
 * Cost model for one group pair at one hierarchy node. The left side owns
 * partitioning ratio alpha, the right side 1 - alpha.
 */
class PairCostModel
{
  public:
    PairCostModel(const GroupRates &left, const GroupRates &right,
                  const CostModelConfig &config);

    /** Sets the left side's partitioning ratio (in (0, 1)). */
    void setAlpha(double alpha);
    double alpha() const { return _alpha; }

    const CostModelConfig &config() const { return _config; }

    /**
     * Table 4: intra-layer communication amount (elements) of partition
     * type @p t on a layer with dims @p d. Ratio-independent (partial-sum
     * tensors are accumulated locally first). Junctions communicate
     * nothing intra-layer.
     */
    static double intraCommElements(PartitionType t, const LayerDims &d);

    /**
     * Table 5: inter-layer communication amount (elements) paid by the
     * side whose ratio is @p own when the boundary tensor of
     * @p boundary_elems elements (A(F) = A(E)) transitions from type
     * @p from (layer l) to type @p to (layer l+1).
     */
    static double interCommElements(PartitionType from, PartitionType to,
                                    double boundary_elems, double own,
                                    double other);

    /**
     * Table 5 split by training phase: the feature-map conversion
     * (F_{l+1}, paid in the forward pass) and the error conversion
     * (E_{l+1}, paid in the backward pass). Their sum equals
     * interCommElements. Used by the trace generator.
     */
    static std::pair<double, double>
    interCommElementsSplit(PartitionType from, PartitionType to,
                           double boundary_elems, double own,
                           double other);

    /** Ratio share of @p side under the current alpha. */
    double ratio(Side side) const;

    /**
     * Per-side cost of executing one layer in state @p t: the ratio share
     * of the three-phase FLOPs over the side's compute density plus the
     * intra-layer transfer over its link bandwidth (Time objective), or
     * the intra-layer element amount (CommAmount objective).
     */
    double sideNodeCost(Side side, const LayerDims &d, bool junction,
                        PartitionType t) const;

    /** Per-side inter-layer transition cost. */
    double sideTransitionCost(Side side, PartitionType from,
                              PartitionType to,
                              double boundary_elems) const;

    /** Pair-combined node cost (per the configured reduce). */
    double nodeCost(const LayerDims &d, bool junction,
                    PartitionType t) const;

    /** Pair-combined transition cost. */
    double transitionCost(PartitionType from, PartitionType to,
                          double boundary_elems) const;

    /**
     * Memoized variant of nodeCost: @p node is the condensed-node id the
     * term belongs to (part of the cache key). Falls back to direct
     * computation when no cache is attached.
     */
    double nodeCost(int node, const LayerDims &d, bool junction,
                    PartitionType t) const;

    /** Memoized variant of transitionCost; @p producer is the edge's
     *  producing condensed-node id. */
    double transitionCost(int producer, PartitionType from,
                          PartitionType to, double boundary_elems) const;

    /**
     * Attaches a shared memo table (nullptr detaches). The model
     * registers its (rates, config) context with the cache, so distinct
     * models sharing one cache never alias entries. Attach before
     * handing the model to concurrent solvers; lookups themselves are
     * thread-safe.
     */
    void attachCache(CostCache *cache);
    CostCache *cache() const { return _cache; }

    /** The compute/link rates of one side (read by RatioCostTables). */
    const GroupRates &rates(Side side) const;

  private:
    double reduce(double left, double right) const;

    GroupRates _left;
    GroupRates _right;
    CostModelConfig _config;
    double _alpha = 0.5;
    CostCache *_cache = nullptr;
    std::uint32_t _cacheContext = 0;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_COST_MODEL_H
