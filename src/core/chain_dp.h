/**
 * @file
 * Layer-wise dynamic-programming search (paper §5.1, Eq. 9) extended with
 * the multi-path handling of §5.2.
 *
 * The DP runs over the series-parallel chain of the condensed graph. For
 * linear segments it is exactly Eq. 9: the accumulated cost of layer
 * L_{i+1} in state t is the minimum over the previous layer's states tt of
 * accumulated cost + computation cost + (intra- and inter-layer)
 * communication cost. At a parallel element, the transition cost from the
 * fork state tt to the join state t is the sum over paths of each path's
 * own minimal chain cost conditioned on the two endpoint states — the
 * procedure of Figure 4. An empty path (identity shortcut) contributes the
 * plain inter-layer conversion on the join tensor.
 *
 * The search is exact for the given cost model: on series-parallel
 * condensed graphs it reproduces the brute-force optimum over all
 * 3^N assignments (verified by tests/core_dp_test).
 */

#ifndef ACCPAR_CORE_CHAIN_DP_H
#define ACCPAR_CORE_CHAIN_DP_H

#include <vector>

#include "core/condensed_graph.h"
#include "core/cost_model.h"
#include "core/segment.h"

namespace accpar::core {

/**
 * Explicit "no node" value for CNodeId parameters (the entry node of a
 * chain that starts the model, unresolved edge endpoints). Replaces the
 * bare -1 sentinel the DP used to pass around.
 */
inline constexpr CNodeId kNoEntryNode = -1;

/** Allowed partition types per condensed node (indexed by CNodeId). */
using TypeRestrictions = std::vector<std::vector<PartitionType>>;

/** Restriction allowing every type at every node (AccPar). */
TypeRestrictions unrestrictedTypes(const CondensedGraph &graph);

/** Result of one DP run at one hierarchy node. */
struct ChainDpResult
{
    /** Total accumulated cost of the optimal assignment. */
    double cost = 0.0;
    /** Chosen type per condensed node, indexed by CNodeId. */
    std::vector<PartitionType> types;
};

/**
 * Solves the layer-wise partitioning DP.
 *
 * @param graph     the condensed model graph (junction flags, names)
 * @param chain     its series-parallel decomposition
 * @param dims      per-node dims, already scaled by ancestor hierarchy
 *                  levels (indexed by CNodeId)
 * @param model     pair cost model with the ratio already set
 * @param allowed   per-node allowed types; must be non-empty per node
 */
ChainDpResult solveChainDp(const CondensedGraph &graph, const Chain &chain,
                           const std::vector<LayerDims> &dims,
                           const PairCostModel &model,
                           const TypeRestrictions &allowed);

/**
 * Evaluates the cost of a fixed assignment directly on the condensed DAG
 * (sum of node costs plus inter-layer costs over every condensed edge,
 * with no charge into the source). solveChainDp minimizes exactly this
 * quantity; brute-force search enumerates it.
 */
double evaluateAssignment(const CondensedGraph &graph,
                          const std::vector<LayerDims> &dims,
                          const PairCostModel &model,
                          const std::vector<PartitionType> &types);

} // namespace accpar::core

#endif // ACCPAR_CORE_CHAIN_DP_H
