#include "core/cost_cache.h"

#include <bit>
#include <cstring>

namespace accpar::core {

namespace {

std::uint64_t
bits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

/** 64-bit FNV-1a style combine. */
std::uint64_t
combine(std::uint64_t seed, std::uint64_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    return seed;
}

} // namespace

bool
CostKey::operator==(const CostKey &other) const
{
    if (context != other.context || node != other.node ||
        kind != other.kind || from != other.from || to != other.to ||
        junction != other.junction || bits(alpha) != bits(other.alpha))
        return false;
    for (int i = 0; i < 6; ++i) {
        if (bits(d[i]) != bits(other.d[i]))
            return false;
    }
    return true;
}

std::size_t
CostKeyHash::operator()(const CostKey &key) const
{
    std::uint64_t h = key.context;
    h = combine(h, static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(key.node)));
    h = combine(h, (static_cast<std::uint64_t>(key.kind) << 24) |
                       (static_cast<std::uint64_t>(key.from) << 16) |
                       (static_cast<std::uint64_t>(key.to) << 8) |
                       key.junction);
    h = combine(h, bits(key.alpha));
    for (double dim : key.d)
        h = combine(h, bits(dim));
    return static_cast<std::size_t>(h);
}

std::uint32_t
CostCache::contextId(const GroupRates &left, const GroupRates &right,
                     const CostModelConfig &config)
{
    const auto same = [](const Context &ctx, const GroupRates &l,
                         const GroupRates &r, const CostModelConfig &c) {
        return bits(ctx.left.compute) == bits(l.compute) &&
               bits(ctx.left.link) == bits(l.link) &&
               bits(ctx.right.compute) == bits(r.compute) &&
               bits(ctx.right.link) == bits(r.link) &&
               ctx.config.objective == c.objective &&
               ctx.config.reduce == c.reduce &&
               ctx.config.includeCompute == c.includeCompute &&
               bits(ctx.config.bytesPerElement) == bits(c.bytesPerElement);
    };
    {
        // Fast path: every context after the first few solves is a
        // re-registration, so concurrent solvers share the read lock.
        const util::SharedLock lock(_contextMutex);
        for (std::size_t i = 0; i < _contexts.size(); ++i) {
            if (same(_contexts[i], left, right, config))
                return static_cast<std::uint32_t>(i);
        }
    }
    const util::LockGuard lock(_contextMutex);
    // Re-scan: a concurrent writer may have registered it between the
    // two locks (ids must stay unique per exact context value).
    for (std::size_t i = 0; i < _contexts.size(); ++i) {
        if (same(_contexts[i], left, right, config))
            return static_cast<std::uint32_t>(i);
    }
    _contexts.push_back(Context{left, right, config});
    return static_cast<std::uint32_t>(_contexts.size() - 1);
}

const CostCache::Shard &
CostCache::shardFor(const CostKey &key) const
{
    return _shards[CostKeyHash{}(key) % kShards];
}

bool
CostCache::lookup(const CostKey &key, double &value) const
{
    const Shard &shard = shardFor(key);
    const util::LockGuard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    _hits.fetch_add(1, std::memory_order_relaxed);
    value = it->second;
    return true;
}

void
CostCache::store(const CostKey &key, double value)
{
    // const_cast-free: store through the same mutable shards.
    Shard &shard = const_cast<Shard &>(shardFor(key));
    const util::LockGuard lock(shard.mutex);
    shard.entries.emplace(key, value);
}

CostCacheStats
CostCache::stats() const
{
    CostCacheStats out;
    out.hits = _hits.load(std::memory_order_relaxed);
    out.misses = _misses.load(std::memory_order_relaxed);
    return out;
}

std::size_t
CostCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : _shards) {
        const util::LockGuard lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

void
CostCache::clear()
{
    for (Shard &shard : _shards) {
        const util::LockGuard lock(shard.mutex);
        shard.entries.clear();
    }
    _hits.store(0);
    _misses.store(0);
}

} // namespace accpar::core
