#include "core/condensed_graph.h"

#include <algorithm>

#include "util/error.h"

namespace accpar::core {

CondensedGraph::CondensedGraph(const graph::Graph &graph)
    : _modelName(graph.name())
{
    graph.validate();

    // anchor[l]: condensed node representing the content of layer l's
    // output, or -1 when the content traces back only to the input.
    std::vector<CNodeId> anchor(graph.size(), -1);

    auto add_node = [&](const graph::Layer &l, bool junction,
                        const LayerDims &dims) {
        CondensedNode node;
        node.layer = l.id;
        node.name = l.name;
        node.kind = l.kind;
        node.junction = junction;
        node.dims = dims;
        // Collect predecessor anchors (deduplicated, input dropped).
        for (graph::LayerId in : l.inputs) {
            const CNodeId p = anchor[in];
            if (p < 0)
                continue;
            if (std::find(node.preds.begin(), node.preds.end(), p) ==
                node.preds.end())
                node.preds.push_back(p);
        }
        const CNodeId id = static_cast<CNodeId>(_nodes.size());
        for (CNodeId p : node.preds)
            _nodes[p].succs.push_back(id);
        _nodes.push_back(std::move(node));
        return id;
    };

    for (const graph::Layer &l : graph.layers()) {
        switch (l.kind) {
          case graph::LayerKind::Input:
            anchor[l.id] = -1;
            break;
          case graph::LayerKind::Conv:
          case graph::LayerKind::FullyConnected:
            anchor[l.id] = add_node(l, false, layerDimsFor(graph, l.id));
            break;
          case graph::LayerKind::Add:
          case graph::LayerKind::Concat:
            anchor[l.id] = add_node(l, true,
                                    junctionDims(l.outputShape));
            break;
          default:
            // Partition-transparent layer: forward its operand's anchor.
            ACCPAR_ASSERT(l.inputs.size() == 1,
                          "transparent layer " << l.name
                              << " must have one operand");
            anchor[l.id] = anchor[l.inputs.front()];
            break;
        }
    }

    ACCPAR_REQUIRE(!_nodes.empty(),
                   "model " << _modelName << " has no weighted layers");

    // Structural sanity: one source, one sink.
    std::size_t sources = 0;
    std::size_t sinks = 0;
    for (const CondensedNode &n : _nodes) {
        sources += n.preds.empty();
        sinks += n.succs.empty();
    }
    ACCPAR_REQUIRE(sources == 1, "condensed graph of " << _modelName
                       << " has " << sources << " sources, expected 1");
    ACCPAR_REQUIRE(sinks == 1, "condensed graph of " << _modelName
                       << " has " << sinks << " sinks, expected 1");
}

const CondensedNode &
CondensedGraph::node(CNodeId id) const
{
    ACCPAR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < _nodes.size(),
                   "invalid condensed node id " << id);
    return _nodes[id];
}

CNodeId
CondensedGraph::source() const
{
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (_nodes[i].preds.empty())
            return static_cast<CNodeId>(i);
    throw util::InternalError("condensed graph has no source");
}

CNodeId
CondensedGraph::sink() const
{
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (_nodes[i].succs.empty())
            return static_cast<CNodeId>(i);
    throw util::InternalError("condensed graph has no sink");
}

std::vector<std::pair<CNodeId, CNodeId>>
CondensedGraph::edges() const
{
    std::vector<std::pair<CNodeId, CNodeId>> out;
    for (std::size_t v = 0; v < _nodes.size(); ++v)
        for (CNodeId u : _nodes[v].preds)
            out.emplace_back(u, static_cast<CNodeId>(v));
    return out;
}

std::vector<CNodeId>
CondensedGraph::weightedNodes() const
{
    std::vector<CNodeId> out;
    for (std::size_t i = 0; i < _nodes.size(); ++i)
        if (!_nodes[i].junction)
            out.push_back(static_cast<CNodeId>(i));
    return out;
}

} // namespace accpar::core
