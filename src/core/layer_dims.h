/**
 * @file
 * The per-layer dimension tuple the cost model operates on.
 *
 * Following §3/§4.3 of the paper, a weighted layer is characterized by the
 * three partitionable dimensions B, D_i, D_o plus the non-partitionable
 * "meta" dimensions (spatial feature-map extents and the kernel window).
 * Dimensions are doubles because hierarchical partitioning scales them by
 * fractional ratios.
 */

#ifndef ACCPAR_CORE_LAYER_DIMS_H
#define ACCPAR_CORE_LAYER_DIMS_H

#include "graph/graph.h"
#include "util/units.h"

namespace accpar::core {

/**
 * Effective dimensions of one weighted layer (or junction pseudo-layer).
 *
 * For an FC layer the meta dimensions are 1; for a CONV layer spatialIn /
 * spatialOut are the input/output feature-map areas and kernelArea is
 * k_h * k_w (paper §4.3). A junction (element-wise join such as a residual
 * Add) carries one tensor: di == do == channel count, kernelArea == 1,
 * spatialIn == spatialOut, and contributes no compute or weights.
 */
struct LayerDims
{
    double b = 0.0;          ///< batch size B
    double di = 0.0;         ///< input data size (channels) D_i
    double dOut = 0.0;       ///< output data size (channels) D_o
    double spatialIn = 1.0;  ///< input feature-map area (h*w)
    double spatialOut = 1.0; ///< output feature-map area (h*w)
    double kernelArea = 1.0; ///< kernel window area (k_h*k_w), 1 for FC

    /** A(F_l) = A(E_l): input feature-map / error tensor size. */
    double sizeInput() const { return b * di * spatialIn; }

    /** A(F_{l+1}) = A(E_{l+1}): output feature-map / error tensor size. */
    double sizeOutput() const { return b * dOut * spatialOut; }

    /** A(W_l) = A(dW_l): kernel tensor size. */
    double sizeWeight() const { return di * dOut * kernelArea; }

    /**
     * FLOPs of the forward multiplication (Table 6 with the CONV
     * extension): A(F_{l+1}) * (2 * D_i * kernelArea - 1).
     */
    util::Flops flopsForward() const;

    /** FLOPs of the backward multiplication. */
    util::Flops flopsBackward() const;

    /** FLOPs of the gradient multiplication. */
    util::Flops flopsGradient() const;

    /** Sum of the three phases. */
    util::Flops flopsTotal() const;

    /** Returns a copy with B, D_i, D_o multiplied by the given factors. */
    LayerDims scaled(double s_b, double s_di, double s_do) const;
};

/** Extracts LayerDims for a weighted layer of @p graph. */
LayerDims layerDimsFor(const graph::Graph &graph, graph::LayerId id);

/** Builds junction pseudo-dims from the joined tensor's shape. */
LayerDims junctionDims(const graph::TensorShape &shape);

} // namespace accpar::core

#endif // ACCPAR_CORE_LAYER_DIMS_H
