/**
 * @file
 * Plan comparison: quantifies how two partition plans for the same
 * (model, hierarchy) differ — which layers/levels disagree on type and
 * how far the ratios diverge. Backs the `accpar diff` subcommand and
 * the flexibility analysis of Table 8.
 */

#ifndef ACCPAR_CORE_PLAN_DIFF_H
#define ACCPAR_CORE_PLAN_DIFF_H

#include <string>
#include <vector>

#include "core/condensed_graph.h"
#include "core/plan.h"
#include "hw/hierarchy.h"

namespace accpar::core {

/** One disagreement between two plans. */
struct PlanDisagreement
{
    hw::NodeId hierNode = hw::kInvalidNode;
    CNodeId cnode = -1;
    std::string layerName;
    PartitionType left = PartitionType::TypeI;
    PartitionType right = PartitionType::TypeI;
};

/** Summary of a plan comparison. */
struct PlanDiff
{
    /** Total (hierarchy node, layer) decisions compared. */
    std::size_t decisions = 0;
    /** Decisions with differing types. */
    std::size_t typeDisagreements = 0;
    /** Largest |alpha_left - alpha_right| over hierarchy nodes. */
    double maxAlphaDelta = 0.0;
    /** Mean |alpha_left - alpha_right|. */
    double meanAlphaDelta = 0.0;
    /** The individual type disagreements, in hierarchy-node order. */
    std::vector<PlanDisagreement> disagreements;

    /** Fraction of decisions that agree, in [0, 1]. */
    double agreement() const;
};

/**
 * Compares two plans over the same hierarchy; throws ConfigError when
 * the plans' layer sets differ.
 */
PlanDiff diffPlans(const PartitionPlan &left, const PartitionPlan &right,
                   const hw::Hierarchy &hierarchy);

/**
 * Compares two plans searched on *different* hierarchies of the same
 * array — e.g. the baseline DP plan on the seed hierarchy vs the
 * outer search's winner on its mutated one (`accpar compare
 * --search-budget`). Node-by-node comparison is meaningless across
 * trees, so this walks the leftmost root-to-leaf path of each
 * hierarchy (the per-level view Figure 7 uses) and compares level i
 * of one against level i of the other, over min(levels) levels.
 * PlanDisagreement::hierNode holds the level index here. Throws
 * ConfigError when the plans' layer sets differ.
 */
PlanDiff diffPlansByLevel(const PartitionPlan &left,
                          const hw::Hierarchy &leftHierarchy,
                          const PartitionPlan &right,
                          const hw::Hierarchy &rightHierarchy);

/** Renders the diff for terminal output. */
std::string formatPlanDiff(const PlanDiff &diff,
                           const std::string &left_label,
                           const std::string &right_label,
                           std::size_t max_rows = 20);

} // namespace accpar::core

#endif // ACCPAR_CORE_PLAN_DIFF_H
