/**
 * @file
 * The condensed partition graph.
 *
 * The partition search runs over weighted layers only (as in the paper:
 * Figure 7 enumerates AlexNet's cv1..cv5, fc1..fc3). This module condenses
 * a full DNN graph to that view: nodes are CONV/FC layers plus *junction*
 * pseudo-nodes for element-wise joins (residual Add), and an edge u -> v
 * exists when v consumes u's output through partition-transparent layers
 * only. Junction nodes carry a partition state like real layers but have
 * no compute or intra-layer cost; they make chained identity shortcuts
 * (ResNet) decompose into clean fork/join regions.
 */

#ifndef ACCPAR_CORE_CONDENSED_GRAPH_H
#define ACCPAR_CORE_CONDENSED_GRAPH_H

#include <string>
#include <vector>

#include "core/layer_dims.h"
#include "graph/graph.h"

namespace accpar::core {

/** Index of a node inside a CondensedGraph. */
using CNodeId = int;

/** One node of the condensed graph. */
struct CondensedNode
{
    /** Originating layer in the source graph. */
    graph::LayerId layer = graph::kInvalidLayer;
    std::string name;
    /** Operator kind of the originating layer. */
    graph::LayerKind kind = graph::LayerKind::Input;
    /** True for junction pseudo-nodes (Add/Concat joins). */
    bool junction = false;
    /** Unscaled dimensions; junctions use junctionDims. */
    LayerDims dims;
    std::vector<CNodeId> preds;
    std::vector<CNodeId> succs;
};

/**
 * Weighted-layer condensation of a DNN graph.
 *
 * Nodes appear in topological order; the graph has exactly one source
 * (the first weighted layer) and one sink.
 */
class CondensedGraph
{
  public:
    /** Builds the condensation of validated @p graph. */
    explicit CondensedGraph(const graph::Graph &graph);

    std::size_t size() const { return _nodes.size(); }
    const CondensedNode &node(CNodeId id) const;
    const std::vector<CondensedNode> &nodes() const { return _nodes; }

    /** The unique node without predecessors. */
    CNodeId source() const;

    /** The unique node without successors. */
    CNodeId sink() const;

    /** All (pred, succ) pairs, each condensed edge exactly once. */
    std::vector<std::pair<CNodeId, CNodeId>> edges() const;

    /** Ids of non-junction (weighted) nodes, in topological order. */
    std::vector<CNodeId> weightedNodes() const;

    /** Name of the source model. */
    const std::string &modelName() const { return _modelName; }

  private:
    std::string _modelName;
    std::vector<CondensedNode> _nodes;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_CONDENSED_GRAPH_H
