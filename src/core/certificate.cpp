#include "core/certificate.h"

#include "util/error.h"

namespace accpar::core {

PlanCertificate::PlanCertificate(std::string strategy, std::string model,
                                 std::size_t hierarchy_nodes,
                                 std::vector<std::string> node_names,
                                 const CostModelConfig &cost,
                                 RatioPolicy ratio_policy)
    : _strategy(std::move(strategy)), _model(std::move(model)),
      _names(std::move(node_names)), _cost(cost),
      _ratioPolicy(ratio_policy), _nodes(hierarchy_nodes)
{
}

void
PlanCertificate::setNodeCertificate(hw::NodeId id,
                                    NodeCertificate certificate)
{
    ACCPAR_REQUIRE(id >= 0 &&
                       static_cast<std::size_t>(id) < _nodes.size(),
                   "certificate node id " << id << " out of range");
    _nodes[static_cast<std::size_t>(id)] = std::move(certificate);
}

bool
PlanCertificate::hasNodeCertificate(hw::NodeId id) const
{
    return id >= 0 && static_cast<std::size_t>(id) < _nodes.size() &&
           _nodes[static_cast<std::size_t>(id)].has_value();
}

const NodeCertificate &
PlanCertificate::nodeCertificate(hw::NodeId id) const
{
    ACCPAR_REQUIRE(hasNodeCertificate(id),
                   "no certificate recorded for hierarchy node " << id);
    return *_nodes[static_cast<std::size_t>(id)];
}

} // namespace accpar::core
