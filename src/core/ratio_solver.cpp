#include "core/ratio_solver.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace accpar::core {

namespace {

/** Keep ratios strictly inside (0, 1) so no group starves. */
constexpr double kRatioFloor = 1e-4;

double
clampRatio(double alpha)
{
    return std::min(1.0 - kRatioFloor, std::max(kRatioFloor, alpha));
}

} // namespace

const char *
ratioPolicyName(RatioPolicy policy)
{
    switch (policy) {
      case RatioPolicy::Fixed:
        return "fixed-0.5";
      case RatioPolicy::ComputeProportional:
        return "compute-proportional";
      case RatioPolicy::PaperLinear:
        return "paper-linear";
      case RatioPolicy::ExactBalance:
        return "exact-balance";
    }
    throw util::InternalError("unknown RatioPolicy");
}

double
sideTotalCost(const CondensedGraph &graph,
              const std::vector<LayerDims> &dims,
              const PairCostModel &model,
              const std::vector<PartitionType> &types, Side side)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.sideNodeCost(side, dims[v], node.junction,
                                    types[v]);
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            total += model.sideTransitionCost(side, types[u], types[v],
                                              boundary);
        }
    }
    return total;
}

double
solveRatioLinear(const CondensedGraph &graph,
                 const std::vector<LayerDims> &dims,
                 const PairCostModel &model,
                 const std::vector<PartitionType> &types)
{
    const double alpha0 = model.alpha();
    const double beta0 = 1.0 - alpha0;
    const double t_left =
        sideTotalCost(graph, dims, model, types, Side::Left);
    const double t_right =
        sideTotalCost(graph, dims, model, types, Side::Right);

    // Linearization: T_L(a) = a * (T_L(a0) / a0), likewise for the right
    // side in (1 - a). Eq. 10 balance T_L(a) = T_R(1 - a) gives:
    const double k_left = t_left / alpha0;
    const double k_right = t_right / beta0;
    if (k_left + k_right <= 0.0)
        return 0.5;
    return clampRatio(k_right / (k_left + k_right));
}

double
solveRatioExact(const CondensedGraph &graph,
                const std::vector<LayerDims> &dims, PairCostModel model,
                const std::vector<PartitionType> &types)
{
    auto difference = [&](double alpha) {
        model.setAlpha(alpha);
        return sideTotalCost(graph, dims, model, types, Side::Left) -
               sideTotalCost(graph, dims, model, types, Side::Right);
    };

    // T_L grows and T_R shrinks with alpha whenever the computation
    // term is present, so T_L - T_R is monotone increasing and the
    // balanced ratio is its root; max(T_L, T_R) is V-shaped around it.
    // (A ternary search on the max alone drifts to an arbitrary point
    // when communication dominates and the max is nearly flat.)
    double lo = kRatioFloor;
    double hi = 1.0 - kRatioFloor;
    const double f_lo = difference(lo);
    const double f_hi = difference(hi);
    if (f_lo >= 0.0)
        return lo; // the left side is slower even with a minimal share
    if (f_hi <= 0.0)
        return hi;
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (difference(mid) <= 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return clampRatio(0.5 * (lo + hi));
}

} // namespace accpar::core
