#include "core/ratio_solver.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace accpar::core {

namespace {

/** Keep ratios strictly inside (0, 1) so no group starves. */
constexpr double kRatioFloor = 1e-4;

double
clampRatio(double alpha)
{
    return std::min(1.0 - kRatioFloor, std::max(kRatioFloor, alpha));
}

} // namespace

const char *
ratioPolicyName(RatioPolicy policy)
{
    switch (policy) {
      case RatioPolicy::Fixed:
        return "fixed-0.5";
      case RatioPolicy::ComputeProportional:
        return "compute-proportional";
      case RatioPolicy::PaperLinear:
        return "paper-linear";
      case RatioPolicy::ExactBalance:
        return "exact-balance";
    }
    throw util::InternalError("unknown RatioPolicy");
}

std::optional<RatioPolicy>
ratioPolicyFromName(const std::string &name)
{
    for (RatioPolicy policy :
         {RatioPolicy::Fixed, RatioPolicy::ComputeProportional,
          RatioPolicy::PaperLinear, RatioPolicy::ExactBalance})
        if (name == ratioPolicyName(policy))
            return policy;
    return std::nullopt;
}

double
sideTotalCost(const CondensedGraph &graph,
              const std::vector<LayerDims> &dims,
              const PairCostModel &model,
              const std::vector<PartitionType> &types, Side side)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.sideNodeCost(side, dims[v], node.junction,
                                    types[v]);
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            total += model.sideTransitionCost(side, types[u], types[v],
                                              boundary);
        }
    }
    return total;
}

RatioCostTables::RatioCostTables(const CondensedGraph &graph,
                                 const std::vector<LayerDims> &dims,
                                 const PairCostModel &model,
                                 const std::vector<PartitionType> &types)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    const CostModelConfig &config = model.config();
    _time = config.objective == ObjectiveKind::Time;
    _includeCompute = config.includeCompute;
    _bpe = config.bytesPerElement;
    _link[0] = model.rates(Side::Left).link;
    _link[1] = model.rates(Side::Right).link;
    _compute[0] = model.rates(Side::Left).compute;
    _compute[1] = model.rates(Side::Right).compute;

    // Terms are collected in the exact order sideTotalCost accumulates
    // them (node term, then incoming edges, per node id); terms that
    // are exactly +0.0 for every alpha (junction nodes, the zero cells
    // of Table 5) are dropped — adding +0.0 to a non-negative running
    // sum never changes its bits. Storage is one parallel array per
    // coefficient so the batch kernels stream the terms directly.
    const std::size_t reserve = graph.size() * 2;
    _kind.reserve(reserve);
    _a.reserve(reserve);
    _aSide0.reserve(reserve);
    _aSide1.reserve(reserve);
    _flops.reserve(reserve);
    auto pushTerm = [&](RatioTermsView::Kind kind, double a,
                        double aSide0, double aSide1, double flops) {
        _kind.push_back(static_cast<std::uint8_t>(kind));
        _a.push_back(a);
        _aSide0.push_back(aSide0);
        _aSide1.push_back(aSide1);
        _flops.push_back(flops);
    };
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        if (!node.junction) {
            const double intra =
                PairCostModel::intraCommElements(types[v], dims[v]);
            if (_time)
                pushTerm(RatioTermsView::NodeTime, 0.0,
                         intra * _bpe / _link[0], intra * _bpe / _link[1],
                         dims[v].flopsTotal());
            else
                pushTerm(RatioTermsView::NodeComm, intra, 0.0, 0.0, 0.0);
        }
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            // Classify the (from, to) cell of Table 5 by its shape in
            // (own, other); see interCommElementsSplit.
            const PartitionType from = types[u];
            const PartitionType to = types[v];
            if ((from == PartitionType::TypeI &&
                 to == PartitionType::TypeII) ||
                (from == PartitionType::TypeIII &&
                 to == PartitionType::TypeI)) {
                pushTerm(RatioTermsView::EdgeBilinear, boundary, 0.0,
                         0.0, 0.0);
            } else if ((from == PartitionType::TypeI &&
                        to == PartitionType::TypeIII) ||
                       (from == PartitionType::TypeII &&
                        to != PartitionType::TypeIII) ||
                       (from == PartitionType::TypeIII &&
                        to == PartitionType::TypeIII)) {
                pushTerm(RatioTermsView::EdgeOther, boundary, 0.0, 0.0,
                         0.0);
            }
            // else: the zero cells of Table 5
        }
    }
}

RatioTermsView
RatioCostTables::view() const
{
    RatioTermsView view;
    view.kind = _kind.data();
    view.a = _a.data();
    view.aSide0 = _aSide0.data();
    view.aSide1 = _aSide1.data();
    view.flops = _flops.data();
    view.count = _kind.size();
    view.time = _time;
    view.includeCompute = _includeCompute;
    view.bpe = _bpe;
    view.link[0] = _link[0];
    view.link[1] = _link[1];
    view.compute[0] = _compute[0];
    view.compute[1] = _compute[1];
    return view;
}

void
RatioCostTables::sideTotalsBatch(const double *alphas, std::size_t n,
                                 double *outLeft,
                                 double *outRight) const
{
    if (n == 0)
        return;
    activeBatchKernelOps().ratioBothSides(view(), alphas, n, outLeft,
                                          outRight);
}

double
RatioCostTables::sideTotal(Side side, double alpha) const
{
    // own/other are derived exactly as PairCostModel::ratio does: the
    // right side's own share is 1 - alpha, and its "other" is
    // 1 - (1 - alpha) — NOT alpha, whose bits can differ.
    const double own = side == Side::Left ? alpha : 1.0 - alpha;
    const double other = 1.0 - own;
    const int si = static_cast<int>(side);

    double total = 0.0;
    for (std::size_t i = 0; i < _kind.size(); ++i) {
        switch (_kind[i]) {
          case RatioTermsView::NodeComm:
            total += _a[i];
            break;
          case RatioTermsView::NodeTime: {
            double cost = si == 0 ? _aSide0[i] : _aSide1[i];
            if (_includeCompute)
                cost += own * _flops[i] / _compute[si];
            total += cost;
            break;
          }
          case RatioTermsView::EdgeBilinear: {
            // Table 5's {own*other*a, own*other*a} pair: the forward
            // and backward phases contribute the same product, summed
            // as x + x like interCommElementsSplit's caller does.
            const double x = own * other * _a[i];
            const double elems = x + x;
            total += _time ? elems * _bpe / _link[si] : elems;
            break;
          }
          case RatioTermsView::EdgeOther: {
            const double elems = other * _a[i];
            total += _time ? elems * _bpe / _link[si] : elems;
            break;
          }
        }
    }
    return total;
}

double
solveRatioLinear(const RatioCostTables &tables, double alpha0)
{
    const double beta0 = 1.0 - alpha0;
    // One single-lane batched pass covers both sides' walks.
    double t_left = 0.0;
    double t_right = 0.0;
    tables.sideTotalsBatch(&alpha0, 1, &t_left, &t_right);

    // Linearization: T_L(a) = a * (T_L(a0) / a0), likewise for the right
    // side in (1 - a). Eq. 10 balance T_L(a) = T_R(1 - a) gives:
    const double k_left = t_left / alpha0;
    const double k_right = t_right / beta0;
    if (k_left + k_right <= 0.0)
        return 0.5;
    return clampRatio(k_right / (k_left + k_right));
}

double
solveRatioLinear(const CondensedGraph &graph,
                 const std::vector<LayerDims> &dims,
                 const PairCostModel &model,
                 const std::vector<PartitionType> &types)
{
    const RatioCostTables tables(graph, dims, model, types);
    return solveRatioLinear(tables, model.alpha());
}

double
solveRatioExact(const RatioCostTables &tables)
{
    return solveRatioExact(tables, nullptr);
}

double
solveRatioExact(const RatioCostTables &tables, RatioBracket *bracket)
{
    // T_L grows and T_R shrinks with alpha whenever the computation
    // term is present, so T_L - T_R is monotone increasing and the
    // balanced ratio is its root; max(T_L, T_R) is V-shaped around it.
    // (A ternary search on the max alone drifts to an arbitrary point
    // when communication dominates and the max is nearly flat.)
    //
    // The multisection below speculatively evaluates three candidates
    // per two steps, which only pays off when the extra candidate
    // rides in an otherwise-idle vector lane; on the scalar backend it
    // would be 1.5x more term walks than plain bisection, so narrow
    // backends take the sequential loop (same bits either way).
    const BatchKernelOps &ops = activeBatchKernelOps();
    if (ops.lanes < 3)
        return solveRatioExactPerAlpha(tables, bracket);
    const RatioTermsView terms = tables.view();

    double lo = kRatioFloor;
    double hi = 1.0 - kRatioFloor;
    {
        const double ends[2] = {lo, hi};
        double left[2];
        double right[2];
        ops.ratioBothSides(terms, ends, 2, left, right);
        if (left[0] - right[0] >= 0.0) {
            if (bracket)
                *bracket = {lo, lo};
            return lo; // left side slower even with a minimal share
        }
        if (left[1] - right[1] <= 0.0) {
            if (bracket)
                *bracket = {hi, hi};
            return hi;
        }
    }
    // 80 bisection steps, two per round: evaluate the midpoint and both
    // depth-2 midpoints in one batched pass, then pick the pair of
    // updates sequential bisection would have made. The candidate
    // expressions are formed exactly as the sequential loop forms them
    // — m2l/m2r ARE the next round's 0.5 * (lo + hi) for either branch
    // — so the (lo, hi) trajectory is bit-identical to
    // solveRatioExactPerAlpha's while the term arrays are walked 41
    // times instead of 82.
    for (int round = 0; round < 40; ++round) {
        const double m1 = 0.5 * (lo + hi);
        const double m2l = 0.5 * (lo + m1);
        const double m2r = 0.5 * (m1 + hi);
        const double mids[3] = {m1, m2l, m2r};
        double left[3];
        double right[3];
        ops.ratioBothSides(terms, mids, 3, left, right);
        if (left[0] - right[0] <= 0.0) {
            lo = m1;
            if (left[2] - right[2] <= 0.0)
                lo = m2r;
            else
                hi = m2r;
        } else {
            hi = m1;
            if (left[1] - right[1] <= 0.0)
                lo = m2l;
            else
                hi = m2l;
        }
    }
    const double alpha = clampRatio(0.5 * (lo + hi));
    if (bracket)
        *bracket = {std::min(lo, alpha), std::max(hi, alpha)};
    return alpha;
}

double
solveRatioExactPerAlpha(const RatioCostTables &tables,
                        RatioBracket *bracket)
{
    auto difference = [&](double alpha) {
        return tables.sideTotal(Side::Left, alpha) -
               tables.sideTotal(Side::Right, alpha);
    };

    double lo = kRatioFloor;
    double hi = 1.0 - kRatioFloor;
    const double f_lo = difference(lo);
    const double f_hi = difference(hi);
    if (f_lo >= 0.0) {
        if (bracket)
            *bracket = {lo, lo};
        return lo; // the left side is slower even with a minimal share
    }
    if (f_hi <= 0.0) {
        if (bracket)
            *bracket = {hi, hi};
        return hi;
    }
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (difference(mid) <= 0.0)
            lo = mid;
        else
            hi = mid;
    }
    const double alpha = clampRatio(0.5 * (lo + hi));
    if (bracket)
        *bracket = {std::min(lo, alpha), std::max(hi, alpha)};
    return alpha;
}

double
solveRatioExact(const CondensedGraph &graph,
                const std::vector<LayerDims> &dims,
                const PairCostModel &model,
                const std::vector<PartitionType> &types)
{
    const RatioCostTables tables(graph, dims, model, types);
    return solveRatioExact(tables);
}

} // namespace accpar::core
