#include "core/ratio_solver.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace accpar::core {

namespace {

/** Keep ratios strictly inside (0, 1) so no group starves. */
constexpr double kRatioFloor = 1e-4;

double
clampRatio(double alpha)
{
    return std::min(1.0 - kRatioFloor, std::max(kRatioFloor, alpha));
}

} // namespace

const char *
ratioPolicyName(RatioPolicy policy)
{
    switch (policy) {
      case RatioPolicy::Fixed:
        return "fixed-0.5";
      case RatioPolicy::ComputeProportional:
        return "compute-proportional";
      case RatioPolicy::PaperLinear:
        return "paper-linear";
      case RatioPolicy::ExactBalance:
        return "exact-balance";
    }
    throw util::InternalError("unknown RatioPolicy");
}

std::optional<RatioPolicy>
ratioPolicyFromName(const std::string &name)
{
    for (RatioPolicy policy :
         {RatioPolicy::Fixed, RatioPolicy::ComputeProportional,
          RatioPolicy::PaperLinear, RatioPolicy::ExactBalance})
        if (name == ratioPolicyName(policy))
            return policy;
    return std::nullopt;
}

double
sideTotalCost(const CondensedGraph &graph,
              const std::vector<LayerDims> &dims,
              const PairCostModel &model,
              const std::vector<PartitionType> &types, Side side)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.sideNodeCost(side, dims[v], node.junction,
                                    types[v]);
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            total += model.sideTransitionCost(side, types[u], types[v],
                                              boundary);
        }
    }
    return total;
}

RatioCostTables::RatioCostTables(const CondensedGraph &graph,
                                 const std::vector<LayerDims> &dims,
                                 const PairCostModel &model,
                                 const std::vector<PartitionType> &types)
{
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    const CostModelConfig &config = model.config();
    _time = config.objective == ObjectiveKind::Time;
    _includeCompute = config.includeCompute;
    _bpe = config.bytesPerElement;
    _link[0] = model.rates(Side::Left).link;
    _link[1] = model.rates(Side::Right).link;
    _compute[0] = model.rates(Side::Left).compute;
    _compute[1] = model.rates(Side::Right).compute;

    // Terms are collected in the exact order sideTotalCost accumulates
    // them (node term, then incoming edges, per node id); terms that
    // are exactly +0.0 for every alpha (junction nodes, the zero cells
    // of Table 5) are dropped — adding +0.0 to a non-negative running
    // sum never changes its bits.
    _terms.reserve(graph.size() * 2);
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        if (!node.junction) {
            Term term;
            const double intra =
                PairCostModel::intraCommElements(types[v], dims[v]);
            if (_time) {
                term.kind = Term::NodeTime;
                term.aSide[0] = intra * _bpe / _link[0];
                term.aSide[1] = intra * _bpe / _link[1];
                term.flops = dims[v].flopsTotal();
            } else {
                term.kind = Term::NodeComm;
                term.a = intra;
            }
            _terms.push_back(term);
        }
        for (CNodeId u : node.preds) {
            const double boundary = std::min(dims[u].sizeOutput(),
                                             dims[v].sizeInput());
            // Classify the (from, to) cell of Table 5 by its shape in
            // (own, other); see interCommElementsSplit.
            const PartitionType from = types[u];
            const PartitionType to = types[v];
            Term term;
            term.a = boundary;
            if ((from == PartitionType::TypeI &&
                 to == PartitionType::TypeII) ||
                (from == PartitionType::TypeIII &&
                 to == PartitionType::TypeI)) {
                term.kind = Term::EdgeBilinear;
            } else if ((from == PartitionType::TypeI &&
                        to == PartitionType::TypeIII) ||
                       (from == PartitionType::TypeII &&
                        to != PartitionType::TypeIII) ||
                       (from == PartitionType::TypeIII &&
                        to == PartitionType::TypeIII)) {
                term.kind = Term::EdgeOther;
            } else {
                continue; // the zero cells of Table 5
            }
            _terms.push_back(term);
        }
    }
}

double
RatioCostTables::sideTotal(Side side, double alpha) const
{
    // own/other are derived exactly as PairCostModel::ratio does: the
    // right side's own share is 1 - alpha, and its "other" is
    // 1 - (1 - alpha) — NOT alpha, whose bits can differ.
    const double own = side == Side::Left ? alpha : 1.0 - alpha;
    const double other = 1.0 - own;
    const int si = static_cast<int>(side);

    double total = 0.0;
    for (const Term &term : _terms) {
        switch (term.kind) {
          case Term::NodeComm:
            total += term.a;
            break;
          case Term::NodeTime: {
            double cost = term.aSide[si];
            if (_includeCompute)
                cost += own * term.flops / _compute[si];
            total += cost;
            break;
          }
          case Term::EdgeBilinear: {
            // Table 5's {own*other*a, own*other*a} pair: the forward
            // and backward phases contribute the same product, summed
            // as x + x like interCommElementsSplit's caller does.
            const double x = own * other * term.a;
            const double elems = x + x;
            total += _time ? elems * _bpe / _link[si] : elems;
            break;
          }
          case Term::EdgeOther: {
            const double elems = other * term.a;
            total += _time ? elems * _bpe / _link[si] : elems;
            break;
          }
        }
    }
    return total;
}

double
solveRatioLinear(const RatioCostTables &tables, double alpha0)
{
    const double beta0 = 1.0 - alpha0;
    const double t_left = tables.sideTotal(Side::Left, alpha0);
    const double t_right = tables.sideTotal(Side::Right, alpha0);

    // Linearization: T_L(a) = a * (T_L(a0) / a0), likewise for the right
    // side in (1 - a). Eq. 10 balance T_L(a) = T_R(1 - a) gives:
    const double k_left = t_left / alpha0;
    const double k_right = t_right / beta0;
    if (k_left + k_right <= 0.0)
        return 0.5;
    return clampRatio(k_right / (k_left + k_right));
}

double
solveRatioLinear(const CondensedGraph &graph,
                 const std::vector<LayerDims> &dims,
                 const PairCostModel &model,
                 const std::vector<PartitionType> &types)
{
    const RatioCostTables tables(graph, dims, model, types);
    return solveRatioLinear(tables, model.alpha());
}

double
solveRatioExact(const RatioCostTables &tables)
{
    return solveRatioExact(tables, nullptr);
}

double
solveRatioExact(const RatioCostTables &tables, RatioBracket *bracket)
{
    auto difference = [&](double alpha) {
        return tables.sideTotal(Side::Left, alpha) -
               tables.sideTotal(Side::Right, alpha);
    };

    // T_L grows and T_R shrinks with alpha whenever the computation
    // term is present, so T_L - T_R is monotone increasing and the
    // balanced ratio is its root; max(T_L, T_R) is V-shaped around it.
    // (A ternary search on the max alone drifts to an arbitrary point
    // when communication dominates and the max is nearly flat.)
    double lo = kRatioFloor;
    double hi = 1.0 - kRatioFloor;
    const double f_lo = difference(lo);
    const double f_hi = difference(hi);
    if (f_lo >= 0.0) {
        if (bracket)
            *bracket = {lo, lo};
        return lo; // the left side is slower even with a minimal share
    }
    if (f_hi <= 0.0) {
        if (bracket)
            *bracket = {hi, hi};
        return hi;
    }
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (difference(mid) <= 0.0)
            lo = mid;
        else
            hi = mid;
    }
    const double alpha = clampRatio(0.5 * (lo + hi));
    if (bracket)
        *bracket = {std::min(lo, alpha), std::max(hi, alpha)};
    return alpha;
}

double
solveRatioExact(const CondensedGraph &graph,
                const std::vector<LayerDims> &dims,
                const PairCostModel &model,
                const std::vector<PartitionType> &types)
{
    const RatioCostTables tables(graph, dims, model, types);
    return solveRatioExact(tables);
}

} // namespace accpar::core
