/**
 * @file
 * Brute-force reference solver.
 *
 * Enumerates every type assignment over the condensed graph — the
 * O(3^N) search the paper's DP avoids (§5.1) — and returns the exact
 * optimum of the same objective the DP minimizes. Used by tests to prove
 * the DP's optimality and by the search-cost microbenchmarks.
 */

#ifndef ACCPAR_CORE_BRUTE_FORCE_H
#define ACCPAR_CORE_BRUTE_FORCE_H

#include <vector>

#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"

namespace accpar::core {

/** Result of an exhaustive search. */
struct BruteForceResult
{
    double cost = 0.0;
    std::vector<PartitionType> types;
};

/**
 * Exhaustively minimizes evaluateAssignment over all allowed type
 * assignments. Refuses graphs larger than @p max_nodes (the search is
 * 3^N).
 */
BruteForceResult bruteForceSearch(const CondensedGraph &graph,
                                  const std::vector<LayerDims> &dims,
                                  const PairCostModel &model,
                                  const TypeRestrictions &allowed,
                                  std::size_t max_nodes = 16);

} // namespace accpar::core

#endif // ACCPAR_CORE_BRUTE_FORCE_H
