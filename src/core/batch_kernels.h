/**
 * @file
 * Dispatched batch kernels of the DP and ratio solvers (DESIGN.md §17).
 *
 * Two data-parallel primitives back the vectorized solve path:
 *
 *  - candidates9: the structure-of-arrays relaxation step of the chain
 *    DP — all nine (target type, source type) candidate costs of one
 *    chain element, computed as (prev + trans) + node per lane from a
 *    to-major transition column block (see DpKernel::solveChain).
 *  - ratioBothSides: the batched alpha sweep of the ratio solver — one
 *    pass over the alpha-independent RatioCostTables term arrays
 *    evaluates T_left(alpha) and T_right(alpha) for n alpha candidates
 *    at once (lanes = alphas), replacing per-alpha re-walks.
 *
 * Backends share one contract: per lane, every operation is the exact
 * IEEE-754 binary64 sequence the scalar reference performs, in the same
 * order, so results are bit-identical across scalar/AVX2/NEON and the
 * solver's plans and certificates do not depend on the selected
 * backend. Selection is a cheap runtime dispatch: the AVX2 table is
 * linked in only when the build enables ACCPAR_SIMD on x86-64 and used
 * only when the CPU reports the feature; tests and benches can force
 * the scalar table to compare backends in-process.
 */

#ifndef ACCPAR_CORE_BATCH_KERNELS_H
#define ACCPAR_CORE_BATCH_KERNELS_H

#include <cstddef>
#include <cstdint>

namespace accpar::core {

/**
 * Borrowed structure-of-arrays view of one RatioCostTables instance:
 * parallel per-term arrays plus the alpha-independent configuration.
 * All pointers remain owned by the tables and must outlive the call.
 */
struct RatioTermsView
{
    /** Term kinds, mirroring RatioCostTables' accumulation cases. */
    enum Kind : std::uint8_t
    {
        NodeComm = 0,     ///< communication objective node term
        NodeTime = 1,     ///< time objective node term
        EdgeBilinear = 2, ///< own*other*a edge term (twin phases)
        EdgeOther = 3,    ///< other*a edge term (single phase)
    };

    const std::uint8_t *kind = nullptr;
    const double *a = nullptr;      ///< elems / boundary coefficient
    const double *aSide0 = nullptr; ///< NodeTime left-side constant
    const double *aSide1 = nullptr; ///< NodeTime right-side constant
    const double *flops = nullptr;  ///< NodeTime three-phase FLOPs
    std::size_t count = 0;

    bool time = true;           ///< objective is time (else comm)
    bool includeCompute = true; ///< add the compute term per node
    double bpe = 2.0;           ///< bytes per element
    double link[2] = {0.0, 0.0};
    double compute[2] = {0.0, 0.0};
};

/** One backend's kernel table; see activeBatchKernelOps(). */
struct BatchKernelOps
{
    /** Backend tag reported in bench context blocks: "scalar",
     *  "avx2" or "neon". */
    const char *name = "scalar";
    /** Vector width in doubles (1 for the scalar reference). */
    int lanes = 1;

    /**
     * Writes the nine relaxation candidates of one chain element:
     * cand[t * 3 + tt] = (prev[tt] + transT[t * 3 + tt]) + node[t].
     * Vector backends read four doubles per column and write four per
     * store; callers must provide prev readable through index 3,
     * transT through index 9, and cand writable through index 9.
     */
    void (*candidates9)(const double *prev, const double *transT,
                        const double *node, double *cand) = nullptr;

    /**
     * Evaluates both side totals for @p n alpha candidates in one pass
     * over the term arrays: outLeft[i] = T_left(alphas[i]) and
     * outRight[i] = T_right(alphas[i]), each bit-identical with the
     * sequential RatioCostTables::sideTotal of that side and alpha.
     * Accepts any n >= 0 and unaligned pointers.
     */
    void (*ratioBothSides)(const RatioTermsView &view,
                           const double *alphas, std::size_t n,
                           double *outLeft, double *outRight) = nullptr;
};

/** The always-available scalar reference table. */
const BatchKernelOps &scalarBatchKernelOps();

/**
 * The AVX2 table, or null when the build does not carry it (compiled
 * in core/batch_kernels_avx2.cpp under its own target flags; null in
 * ACCPAR_SIMD=OFF builds and on other architectures). Internal to the
 * dispatcher — callers use activeBatchKernelOps().
 */
const BatchKernelOps *avx2BatchKernelOps();

/**
 * The table the solvers should use right now: the widest backend the
 * build carries and the CPU supports, unless the scalar fallback is
 * forced. The choice only affects throughput, never results.
 */
const BatchKernelOps &activeBatchKernelOps();

/**
 * Forces (or releases) the scalar reference for subsequent
 * activeBatchKernelOps() calls; returns the previous setting. Used by
 * the bit-identity tests and the scalar-vs-SIMD bench arms. Also
 * settable from the environment: ACCPAR_SIMD=scalar|off|0 forces the
 * scalar table for the whole process.
 */
bool setBatchKernelForceScalar(bool force);

/** Name of the active backend ("scalar", "avx2", "neon"). */
const char *batchKernelVariantName();

/** Lane width of the active backend (1 for scalar). */
int batchKernelLanes();

} // namespace accpar::core

#endif // ACCPAR_CORE_BATCH_KERNELS_H
