/**
 * @file
 * The hierarchical partitioning solver: applies the layer-wise DP
 * recursively over the bi-partition tree of the accelerator array
 * (paper §5.1's hierarchical/recursive partitioning).
 *
 * At every internal hierarchy node the solver (1) builds the pair cost
 * model from the two child groups' aggregate rates, (2) runs the chain DP
 * for the current ratio, (3) re-solves the ratio per the configured
 * policy, iterating (2)-(3) to a bounded fixed point, and (4) recurses
 * into the children with the per-layer dimensions scaled by the chosen
 * types and ratio (Type-I scales B, Type-II scales D_i, Type-III scales
 * D_o; junctions scale their single channel dimension for both II and
 * III).
 */

#ifndef ACCPAR_CORE_HIERARCHICAL_SOLVER_H
#define ACCPAR_CORE_HIERARCHICAL_SOLVER_H

#include <functional>
#include <memory>

#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_cache.h"
#include "core/cost_model.h"
#include "core/plan.h"
#include "core/ratio_solver.h"
#include "core/segment.h"
#include "graph/graph.h"
#include "graph/sp_decomposition.h"
#include "hw/hierarchy.h"
#include "util/thread_pool.h"

namespace accpar::core {

class PlanCertificate;
class DpStructure;

/** Per-node allowed-type policy; default allows all three types. */
using AllowedTypesFn =
    std::function<std::vector<PartitionType>(const CondensedNode &)>;

/**
 * Configuration of one hierarchical solve.
 *
 * Deprecated as a user-facing surface: this is the solver layer's
 * two-level view (search knobs here, cost knobs nested in `cost`) kept
 * so existing callers and tests compile unchanged. New code should
 * configure the flat accpar::PlanOptions (core/planner.h), which folds
 * both levels into one documented struct and converts via
 * PlanOptions::toSolverOptions / fromSolverOptions.
 */
struct SolverOptions
{
    CostModelConfig cost;
    RatioPolicy ratioPolicy = RatioPolicy::PaperLinear;
    /** Bounded fixed-point iterations of (DP, ratio) per node. */
    int ratioIterations = 3;
    /** Allowed types per condensed node; null means unrestricted. */
    AllowedTypesFn allowedTypes;
    /**
     * Integer-granularity constraint: a type is only searchable at a
     * level while the dimension it partitions keeps at least this many
     * units on each side after the split (a board cannot hold a fraction
     * of a batch sample or channel). 0 disables the check. When no
     * allowed type is feasible, the type with the largest partitionable
     * dimension is kept.
     */
    double minDimPerSide = 1.0;
    /** Strategy label recorded in the plan. */
    std::string strategyName = "accpar";
};

/**
 * Shared execution resources for one solve, all optional. Both members
 * are non-owning; the Planner facade wires them up for callers.
 *
 * - With a pool, sibling subtrees of the bi-partition hierarchy solve
 *   concurrently. The decisions of a subtree depend only on its
 *   ancestors' (type, ratio) choices, and every hierarchy node writes
 *   its own plan slot, so the result is bit-identical to the sequential
 *   solve regardless of thread count.
 * - With a memo cache, inter/intra-layer cost terms are reused across
 *   hierarchy nodes, strategies, and sweep points (see CostCache).
 */
struct SolveContext
{
    util::ThreadPool *pool = nullptr; ///< null => fully sequential
    CostCache *memo = nullptr;        ///< null => no cost memoization
    /**
     * When non-null, solveHierarchy re-initializes it for the run and
     * every internal hierarchy node records the evidence of its solve
     * (cost tables, Bellman rows, ratio bracket) into its own slot —
     * concurrent sibling solves stay race-free for the same reason
     * plan-slot writes do. See core/certificate.h.
     */
    PlanCertificate *certificate = nullptr;
};

/**
 * True when splitting @p t's dimension of @p dims at @p min_share (the
 * smaller of the two ratio shares) leaves at least @p min_dim units per
 * side.
 */
bool typeFeasible(const LayerDims &dims, bool junction, PartitionType t,
                  double min_share, double min_dim);

/**
 * A prepared partitioning problem: the condensed view of one model,
 * reusable across hierarchies and solver options.
 *
 * Construction classifies the condensed graph structurally. Models
 * whose fork/join regions nest with distinct joins take the legacy
 * chain decomposition and are solved by the flattened DP kernel —
 * byte-identical to the frozen tests/support/legacy_dp reference.
 * Everything else (including non-series-parallel graphs) gets the
 * general SP-decomposition tree (graph/sp_decomposition.h) and is
 * solved by core/sp_solver.h; residual regions beyond the exact
 * bound are rejected there with diagnostic AG009.
 */
class PartitionProblem
{
  public:
    explicit PartitionProblem(const graph::Graph &model);

    /** Non-copyable and non-movable: the compiled DP structure keeps a
     *  reference into the condensed graph. Share problems by
     *  reference (Planner::planBatch and solveHierarchyBatch do). */
    PartitionProblem(const PartitionProblem &) = delete;
    PartitionProblem &operator=(const PartitionProblem &) = delete;
    ~PartitionProblem();

    const CondensedGraph &condensed() const { return _condensed; }

    /** True when the legacy chain decomposition applies (every zoo
     *  CNN and transformer); the DP kernel path is used. */
    bool hasChain() const { return _hasChain; }

    /** The legacy chain view; ConfigError unless hasChain(). */
    const Chain &chain() const;

    /** The compiled (graph, chain) structure every DpKernel over this
     *  problem borrows — one compilation per problem instead of one
     *  per hierarchy node. ConfigError unless hasChain(). */
    const DpStructure &dpStructure() const;

    /** The general decomposition tree; ConfigError when hasChain()
     *  (chain-mode problems never build it). */
    const graph::SpTree &spTree() const;

    /** Unscaled dims per condensed node. */
    const std::vector<LayerDims> &baseDims() const { return _baseDims; }

    /** Condensed node names (for plan reporting). */
    std::vector<std::string> nodeNames() const;

  private:
    CondensedGraph _condensed;
    bool _hasChain = false;
    Chain _chain;
    graph::SpTree _spTree;
    std::vector<LayerDims> _baseDims;
    /** Compiled once in the constructor for chain-mode problems; the
     *  type stays incomplete here so the certificate checker's include
     *  graph never reaches the DP kernel (ALINT05). */
    std::unique_ptr<DpStructure> _dpStructure;
};

/** Solves the full hierarchy for @p problem. */
PartitionPlan solveHierarchy(const PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const SolverOptions &options);

/** Solves with shared execution resources (thread pool, memo cache). */
PartitionPlan solveHierarchy(const PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const SolverOptions &options,
                             const SolveContext &context);

/** Convenience wrapper building the problem from @p model. */
PartitionPlan solveHierarchy(const graph::Graph &model,
                             const hw::Hierarchy &hierarchy,
                             const SolverOptions &options);

/**
 * Solves @p problem against several hierarchy candidates in one call,
 * returning one plan per entry of @p hierarchies (in order). All
 * solves share the problem's compiled DP structure and the context's
 * memo cache; with a pool the candidates solve concurrently — each
 * candidate's plan is bit-identical to its own solveHierarchy call, so
 * batching only changes throughput. The search layer uses this to
 * score a lookahead set of annealing neighbors per oracle call.
 *
 * Certificate emission is per-solve evidence and is not batched:
 * @p context.certificate must be null (solve the winner again to emit).
 */
std::vector<PartitionPlan>
solveHierarchyBatch(const PartitionProblem &problem,
                    const std::vector<const hw::Hierarchy *> &hierarchies,
                    const SolverOptions &options,
                    const SolveContext &context);

/** The dimension scale factors a node's choice hands to a child group. */
struct DimScales
{
    double b = 1.0;
    double di = 1.0;
    double dOut = 1.0;
};

/**
 * Applies one level's (type, ratio) decision for one condensed node to
 * the child-group scales. Exposed for tests and the trace generator.
 */
DimScales childScales(const DimScales &scales, bool junction,
                      PartitionType type, double ratio);

/** Scales the base dims of @p problem by per-node @p scales. */
std::vector<LayerDims> scaledDims(const PartitionProblem &problem,
                                  const std::vector<DimScales> &scales);

} // namespace accpar::core

#endif // ACCPAR_CORE_HIERARCHICAL_SOLVER_H
