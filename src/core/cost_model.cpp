#include "core/cost_model.h"

#include <algorithm>

#include "core/cost_cache.h"
#include "util/error.h"

namespace accpar::core {

PairCostModel::PairCostModel(const GroupRates &left, const GroupRates &right,
                             const CostModelConfig &config)
    : _left(left), _right(right), _config(config)
{
    if (_config.objective == ObjectiveKind::Time) {
        ACCPAR_REQUIRE(_left.link > 0.0 && _right.link > 0.0,
                       "time objective needs positive link bandwidths");
        ACCPAR_REQUIRE(!_config.includeCompute ||
                           (_left.compute > 0.0 && _right.compute > 0.0),
                       "time objective needs positive compute densities");
    }
    ACCPAR_REQUIRE(_config.bytesPerElement > 0.0,
                   "bytesPerElement must be positive");
}

void
PairCostModel::setAlpha(double alpha)
{
    ACCPAR_REQUIRE(alpha > 0.0 && alpha < 1.0,
                   "partitioning ratio must be in (0, 1), got " << alpha);
    _alpha = alpha;
}

double
PairCostModel::intraCommElements(PartitionType t, const LayerDims &d)
{
    // Table 4. The transferred tensor is the partial-sum (or replicated)
    // tensor of the one phase that cannot complete locally:
    //   Type-I   -> gradient phase  -> A(W_l)
    //   Type-II  -> forward phase   -> A(F_{l+1})
    //   Type-III -> backward phase  -> A(E_l)
    switch (t) {
      case PartitionType::TypeI:
        return d.sizeWeight();
      case PartitionType::TypeII:
        return d.sizeOutput();
      case PartitionType::TypeIII:
        return d.sizeInput();
    }
    throw util::InternalError("unknown PartitionType");
}

double
PairCostModel::interCommElements(PartitionType from, PartitionType to,
                                 double boundary_elems, double own,
                                 double other)
{
    const auto [f, e] =
        interCommElementsSplit(from, to, boundary_elems, own, other);
    return f + e;
}

std::pair<double, double>
PairCostModel::interCommElementsSplit(PartitionType from, PartitionType to,
                                      double boundary_elems, double own,
                                      double other)
{
    // Table 5, with A(F_{l+1}) == A(E_{l+1}) == boundary_elems. Entries
    // with a beta factor mean "fetch the fraction the other side holds";
    // entries with alpha*beta re-partition the tensor between disjoint
    // dimensions. The F component converts in the forward pass, the E
    // component in the backward pass (§4.1.2).
    const double a = boundary_elems;
    switch (from) {
      case PartitionType::TypeI:
        switch (to) {
          case PartitionType::TypeI:
            return {0.0, 0.0};
          case PartitionType::TypeII:
            return {own * other * a, own * other * a};
          case PartitionType::TypeIII:
            return {other * a, 0.0};
        }
        break;
      case PartitionType::TypeII:
        switch (to) {
          case PartitionType::TypeI:
          case PartitionType::TypeII:
            return {0.0, other * a};
          case PartitionType::TypeIII:
            return {0.0, 0.0};
        }
        break;
      case PartitionType::TypeIII:
        switch (to) {
          case PartitionType::TypeI:
            return {own * other * a, own * other * a};
          case PartitionType::TypeII:
            return {0.0, 0.0};
          case PartitionType::TypeIII:
            return {other * a, 0.0};
        }
        break;
    }
    throw util::InternalError("unknown PartitionType pair");
}

double
PairCostModel::ratio(Side side) const
{
    return side == Side::Left ? _alpha : 1.0 - _alpha;
}

const GroupRates &
PairCostModel::rates(Side side) const
{
    return side == Side::Left ? _left : _right;
}

double
PairCostModel::reduce(double left, double right) const
{
    return _config.reduce == PairReduce::Max ? std::max(left, right)
                                             : left + right;
}

double
PairCostModel::sideNodeCost(Side side, const LayerDims &d, bool junction,
                            PartitionType t) const
{
    if (junction) {
        // Junctions (element-wise joins) have no weights, no partial
        // sums, and negligible compute; the model charges them nothing.
        return 0.0;
    }
    const double intra_elems = intraCommElements(t, d);
    if (_config.objective == ObjectiveKind::CommAmount)
        return intra_elems;

    const GroupRates &r = rates(side);
    double cost =
        intra_elems * _config.bytesPerElement / r.link;
    if (_config.includeCompute)
        cost += ratio(side) * d.flopsTotal() / r.compute;
    return cost;
}

double
PairCostModel::sideTransitionCost(Side side, PartitionType from,
                                  PartitionType to,
                                  double boundary_elems) const
{
    const double own = ratio(side);
    const double elems =
        interCommElements(from, to, boundary_elems, own, 1.0 - own);
    if (_config.objective == ObjectiveKind::CommAmount)
        return elems;
    return elems * _config.bytesPerElement / rates(side).link;
}

double
PairCostModel::nodeCost(const LayerDims &d, bool junction,
                        PartitionType t) const
{
    return reduce(sideNodeCost(Side::Left, d, junction, t),
                  sideNodeCost(Side::Right, d, junction, t));
}

double
PairCostModel::transitionCost(PartitionType from, PartitionType to,
                              double boundary_elems) const
{
    return reduce(sideTransitionCost(Side::Left, from, to, boundary_elems),
                  sideTransitionCost(Side::Right, from, to,
                                     boundary_elems));
}

double
PairCostModel::nodeCost(int node, const LayerDims &d, bool junction,
                        PartitionType t) const
{
    if (!_cache)
        return nodeCost(d, junction, t);
    CostKey key;
    key.context = _cacheContext;
    key.node = node;
    key.kind = CostKey::IntraLayer;
    key.from = static_cast<std::uint8_t>(partitionTypeIndex(t));
    key.junction = junction ? 1 : 0;
    key.alpha = _alpha;
    key.d[0] = d.b;
    key.d[1] = d.di;
    key.d[2] = d.dOut;
    key.d[3] = d.spatialIn;
    key.d[4] = d.spatialOut;
    key.d[5] = d.kernelArea;
    double value;
    if (_cache->lookup(key, value))
        return value;
    value = nodeCost(d, junction, t);
    _cache->store(key, value);
    return value;
}

double
PairCostModel::transitionCost(int producer, PartitionType from,
                              PartitionType to,
                              double boundary_elems) const
{
    if (!_cache)
        return transitionCost(from, to, boundary_elems);
    CostKey key;
    key.context = _cacheContext;
    key.node = producer;
    key.kind = CostKey::InterLayer;
    key.from = static_cast<std::uint8_t>(partitionTypeIndex(from));
    key.to = static_cast<std::uint8_t>(partitionTypeIndex(to));
    key.alpha = _alpha;
    key.d[0] = boundary_elems;
    double value;
    if (_cache->lookup(key, value))
        return value;
    value = transitionCost(from, to, boundary_elems);
    _cache->store(key, value);
    return value;
}

void
PairCostModel::attachCache(CostCache *cache)
{
    _cache = cache;
    _cacheContext =
        cache ? cache->contextId(_left, _right, _config) : 0;
}

} // namespace accpar::core
