#include "core/brute_force.h"

#include <limits>

#include "util/error.h"

namespace accpar::core {

BruteForceResult
bruteForceSearch(const CondensedGraph &graph,
                 const std::vector<LayerDims> &dims,
                 const PairCostModel &model,
                 const TypeRestrictions &allowed, std::size_t max_nodes)
{
    const std::size_t n = graph.size();
    ACCPAR_REQUIRE(n <= max_nodes,
                   "brute force limited to " << max_nodes
                       << " nodes, model has " << n);
    ACCPAR_REQUIRE(allowed.size() == n, "restriction size mismatch");

    BruteForceResult best;
    best.cost = std::numeric_limits<double>::infinity();

    std::vector<PartitionType> current(n, PartitionType::TypeI);
    std::vector<std::size_t> cursor(n, 0);

    // Odometer enumeration over the per-node allowed sets.
    for (std::size_t i = 0; i < n; ++i)
        current[i] = allowed[i].front();

    while (true) {
        const double cost = evaluateAssignment(graph, dims, model,
                                               current);
        if (cost < best.cost) {
            best.cost = cost;
            best.types = current;
        }

        std::size_t pos = 0;
        while (pos < n) {
            if (++cursor[pos] < allowed[pos].size()) {
                current[pos] = allowed[pos][cursor[pos]];
                break;
            }
            cursor[pos] = 0;
            current[pos] = allowed[pos].front();
            ++pos;
        }
        if (pos == n)
            break;
    }
    return best;
}

} // namespace accpar::core
