/**
 * @file
 * Memoization of inter/intra-layer cost-model terms.
 *
 * Hierarchical solves and strategy sweeps re-evaluate the same cost
 * terms many times: sibling subtrees of a homogeneous array see
 * identical (group rates, scaled dims, alpha) tuples, and every sweep
 * point of the Figure 8 hierarchy sweep embeds the smaller arrays'
 * solves as subtrees. A CostCache lets PairCostModel reuse those
 * evaluations across hierarchy nodes, strategies, and sweep points.
 *
 * Keys are exact: a cache entry is a pure function of (context, node,
 * alpha bit pattern, dims/boundary bit patterns, partition type pair),
 * where the context identifies the (group-rate pair, cost config) the
 * model was built from. Because every call site computes the term
 * through the same out-of-line PairCostModel code, a cached value is
 * bit-identical to what recomputation would produce — caching (and the
 * thread interleaving of a parallel solve) can never change a plan.
 * Lookups are thread-safe via sharded locking; hit/miss counters are
 * exposed so sweeps can report reuse.
 */

#ifndef ACCPAR_CORE_COST_CACHE_H
#define ACCPAR_CORE_COST_CACHE_H

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "core/layer_dims.h"
#include "util/sync.h"

namespace accpar::core {

/** Cache effectiveness counters. */
struct CostCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) /
                                      static_cast<double>(total);
    }
};

/** One memoized cost term's full key (compared exactly, never hashed-only). */
struct CostKey
{
    enum Kind : std::uint8_t { IntraLayer = 0, InterLayer = 1 };

    std::uint32_t context = 0; ///< registered (rates, config) id
    std::int32_t node = -1;    ///< condensed node (edge: producer) id
    std::uint8_t kind = IntraLayer;
    std::uint8_t from = 0;     ///< type index (IntraLayer: the type)
    std::uint8_t to = 0;       ///< type index (IntraLayer: unused)
    std::uint8_t junction = 0;
    double alpha = 0.0;        ///< exact bit pattern is the "bucket"
    /** Dims (b, di, dOut, spatialIn, spatialOut, kernelArea) for
     *  IntraLayer; boundary element count in d[0] for InterLayer. */
    double d[6] = {0, 0, 0, 0, 0, 0};

    bool operator==(const CostKey &other) const;
};

/** Hash over the exact bit patterns of a CostKey. */
struct CostKeyHash
{
    std::size_t operator()(const CostKey &key) const;
};

/**
 * Thread-safe memo table of cost terms. One instance may be shared by
 * any number of PairCostModels and solver threads; models built from
 * different rates or configs never alias because each registers its own
 * context id (matched by exact value, so reuse is collision-free).
 */
class CostCache
{
  public:
    CostCache() = default;

    CostCache(const CostCache &) = delete;
    CostCache &operator=(const CostCache &) = delete;

    /**
     * Returns the id of the (rates, config) context, registering it on
     * first sight. Contexts are compared by exact field values.
     */
    std::uint32_t contextId(const GroupRates &left, const GroupRates &right,
                            const CostModelConfig &config);

    /** True (and sets @p value) when @p key is cached; counts hit/miss. */
    bool lookup(const CostKey &key, double &value) const;

    /** Inserts @p key -> @p value (idempotent: first value wins, and any
     *  concurrent writer computed the identical value anyway). */
    void store(const CostKey &key, double value);

    CostCacheStats stats() const;
    std::size_t size() const;
    void clear();

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        mutable util::Mutex mutex{"CostCache::Shard::mutex"};
        std::unordered_map<CostKey, double, CostKeyHash> entries
            ACCPAR_GUARDED_BY(mutex);
    };

    struct Context
    {
        GroupRates left;
        GroupRates right;
        CostModelConfig config;
    };

    const Shard &shardFor(const CostKey &key) const;

    mutable Shard _shards[kShards];
    mutable std::atomic<std::uint64_t> _hits{0};
    mutable std::atomic<std::uint64_t> _misses{0};
    /** Reader/writer split: contexts are registered once and then only
     *  scanned, so concurrent solves take the shared side. */
    mutable util::SharedMutex _contextMutex{"CostCache::_contextMutex"};
    std::vector<Context> _contexts ACCPAR_GUARDED_BY(_contextMutex);
};

} // namespace accpar::core

#endif // ACCPAR_CORE_COST_CACHE_H
