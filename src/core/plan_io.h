/**
 * @file
 * Partition-plan serialization: save a searched plan as JSON and load
 * it back, so expensive searches can be cached, compared offline, or
 * shipped to an execution system.
 *
 * Loading is backed by the static analysis subsystem: structurally
 * invalid documents are rejected with precise diagnostics (rule codes
 * APIO01..APIO07, see DESIGN.md) instead of undefined behavior. The
 * throwing entry points remain for convenience and raise ConfigError
 * with the rendered diagnostics.
 */

#ifndef ACCPAR_CORE_PLAN_IO_H
#define ACCPAR_CORE_PLAN_IO_H

#include <optional>
#include <string>

#include "analysis/diagnostic.h"
#include "core/plan.h"
#include "hw/hierarchy.h"
#include "util/json.h"

namespace accpar::core {

/**
 * Stable signature of a hierarchy (node structure + group makeup).
 * Plans and certificates embed it so a load against a different array
 * fails loudly instead of silently misapplying decisions.
 */
std::string hierarchySignature(const hw::Hierarchy &hierarchy);

/**
 * Serializes @p plan. The hierarchy is identified by its node count
 * and per-node group signatures so a load against a different array
 * fails loudly instead of silently misapplying decisions.
 */
util::Json planToJson(const PartitionPlan &plan,
                      const hw::Hierarchy &hierarchy);

/**
 * Restores a plan serialized by planToJson. Throws ConfigError when
 * the document is malformed or does not match @p hierarchy.
 */
PartitionPlan planFromJson(const util::Json &json,
                           const hw::Hierarchy &hierarchy);

/**
 * Diagnostic-collecting variant: structural problems are reported into
 * @p sink (codes APIO01..APIO07) and std::nullopt is returned instead
 * of throwing. Never crashes or silently accepts a malformed document.
 */
std::optional<PartitionPlan>
planFromJson(const util::Json &json, const hw::Hierarchy &hierarchy,
             analysis::DiagnosticSink &sink);

/** Writes @p plan to @p path (pretty-printed JSON). */
void savePlan(const PartitionPlan &plan, const hw::Hierarchy &hierarchy,
              const std::string &path);

/** Reads a plan from @p path. */
PartitionPlan loadPlan(const std::string &path,
                       const hw::Hierarchy &hierarchy);

/** Diagnostic-collecting variant of loadPlan (APIO01 on unreadable or
 *  unparseable files). */
std::optional<PartitionPlan>
loadPlan(const std::string &path, const hw::Hierarchy &hierarchy,
         analysis::DiagnosticSink &sink);

/**
 * Writes the Figure-7-style type matrix of @p plan as CSV: one row per
 * hierarchy level (leftmost root-to-leaf path), one column per layer,
 * cells I/II/III. Works for any model, not just AlexNet.
 */
void writeTypeMatrixCsv(const PartitionPlan &plan,
                        const hw::Hierarchy &hierarchy,
                        const std::string &path);

} // namespace accpar::core

#endif // ACCPAR_CORE_PLAN_IO_H
