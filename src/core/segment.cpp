#include "core/segment.h"

#include "util/error.h"

namespace accpar::core {

std::vector<CNodeId>
immediatePostDominators(const CondensedGraph &graph)
{
    // Node indices are a topological order by construction, so the
    // Cooper-Harvey-Kennedy intersection runs directly on indices, with
    // post-dominators processed from the sink backwards.
    const int n = static_cast<int>(graph.size());
    std::vector<CNodeId> ipdom(n, -1);
    const CNodeId sink = graph.sink();
    ipdom[sink] = sink;

    auto intersect = [&](CNodeId a, CNodeId b) {
        while (a != b) {
            while (a < b)
                a = ipdom[a];
            while (b < a)
                b = ipdom[b];
        }
        return a;
    };

    for (int u = n - 1; u >= 0; --u) {
        if (u == sink)
            continue;
        const CondensedNode &node = graph.node(u);
        ACCPAR_ASSERT(!node.succs.empty(),
                      "non-sink node " << node.name << " has no succs");
        CNodeId dom = node.succs.front();
        for (std::size_t i = 1; i < node.succs.size(); ++i)
            dom = intersect(dom, node.succs[i]);
        ipdom[u] = dom;
    }
    return ipdom;
}

namespace {

Element
singleElement(CNodeId node)
{
    Element e;
    e.node = node;
    return e;
}

/**
 * Appends elements covering the open-closed region (cur, stop] of the
 * condensed graph to @p out. Nested forks recurse.
 */
void
buildRegion(const CondensedGraph &graph, const std::vector<CNodeId> &ipdom,
            CNodeId cur, CNodeId stop, std::vector<Element> &out)
{
    while (cur != stop) {
        const CondensedNode &node = graph.node(cur);
        if (node.succs.size() == 1) {
            cur = node.succs.front();
            out.push_back(singleElement(cur));
            continue;
        }

        // Fork: all paths reconverge at cur's immediate post-dominator.
        const CNodeId join = ipdom[cur];
        Element par;
        par.node = join;
        for (CNodeId s : node.succs) {
            Chain path;
            if (s != join) {
                path.elements.push_back(singleElement(s));
                buildRegion(graph, ipdom, s, join, path.elements);
                // The region includes the join; the join's state belongs
                // to the parallel element, so strip it from the path.
                ACCPAR_REQUIRE(!path.elements.back().isParallel(),
                               "nested parallel region joining at its "
                               "parent's join is not supported (node "
                                   << graph.node(join).name << ")");
                ACCPAR_ASSERT(path.elements.back().node == join,
                              "path does not end at the join");
                path.elements.pop_back();
            }
            par.paths.push_back(std::move(path));
        }
        out.push_back(std::move(par));
        cur = join;
    }
}

void
collect(const Chain &chain, std::vector<CNodeId> &out)
{
    for (const Element &e : chain.elements) {
        for (const Chain &path : e.paths)
            collect(path, out);
        out.push_back(e.node);
    }
}

} // namespace

Chain
decomposeSeriesParallel(const CondensedGraph &graph)
{
    const std::vector<CNodeId> ipdom = immediatePostDominators(graph);
    Chain chain;
    const CNodeId source = graph.source();
    chain.elements.push_back(singleElement(source));
    buildRegion(graph, ipdom, source, graph.sink(), chain.elements);

    // Every condensed node must be represented exactly once.
    std::vector<CNodeId> covered = collectChainNodes(chain);
    ACCPAR_ASSERT(covered.size() == graph.size(),
                  "series-parallel decomposition covered "
                      << covered.size() << " of " << graph.size()
                      << " nodes");
    std::vector<bool> seen(graph.size(), false);
    for (CNodeId id : covered) {
        ACCPAR_ASSERT(!seen[id], "node " << graph.node(id).name
                                         << " covered twice");
        seen[id] = true;
    }
    return chain;
}

std::vector<CNodeId>
collectChainNodes(const Chain &chain)
{
    std::vector<CNodeId> out;
    collect(chain, out);
    return out;
}

} // namespace accpar::core
