#include "core/sp_solver.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace accpar::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double
edgeBoundary(const std::vector<LayerDims> &dims, CNodeId from, CNodeId to)
{
    return std::min(dims[from].sizeOutput(), dims[to].sizeInput());
}

} // namespace

SpSolver::SpSolver(const CondensedGraph &graph, const graph::SpTree &tree,
                   const std::vector<LayerDims> &dims)
    : _graph(graph), _tree(tree), _dims(dims)
{
    ACCPAR_REQUIRE(dims.size() == graph.size(),
                   "dims size mismatch: " << dims.size() << " vs "
                                          << graph.size());
    ACCPAR_REQUIRE(
        tree.maxResidualSize() <= kResidualExactLimit,
        "[AG009] a non-series-parallel region of "
            << graph.modelName() << " has " << tree.maxResidualSize()
            << " internal layers, beyond the exact-fallback bound of "
            << kResidualExactLimit
            << "; the partition search cannot prove optimality for it");

    _compiled.resize(tree.size());
    std::vector<char> internalFlag(graph.size(), 0);
    for (std::size_t id = 0; id < tree.size(); ++id) {
        const graph::SpNode &node = tree.node(static_cast<int>(id));
        CompiledNode &out = _compiled[id];
        if (node.kind == graph::SpKind::Leaf) {
            out.edge = {node.source, node.sink,
                        edgeBoundary(dims, node.source, node.sink)};
            continue;
        }
        if (node.kind != graph::SpKind::Residual)
            continue;
        for (int v : node.internal)
            internalFlag[v] = 1;
        for (int v : node.internal) {
            for (CNodeId p : _graph.node(v).preds) {
                ACCPAR_ASSERT(p == node.source || internalFlag[p],
                              "residual region edge " << p << " -> " << v
                                                      << " escapes the "
                                                         "region");
                CompiledEdge edge{p, v, edgeBoundary(dims, p, v)};
                if (p == node.source)
                    out.crossEdges.push_back(edge);
                else
                    out.innerEdges.push_back(edge);
            }
        }
        for (CNodeId p : _graph.node(node.sink).preds) {
            if (p >= 0 && internalFlag[p]) {
                out.crossEdges.push_back(
                    {p, node.sink, edgeBoundary(dims, p, node.sink)});
            }
        }
        for (int v : node.internal)
            internalFlag[v] = 0;
    }
}

void
SpSolver::solveLeaf(graph::SpNodeId id, const PairCostModel &model,
                    std::vector<double> &m) const
{
    const CompiledEdge &edge = _compiled[id].edge;
    double *row = &m[static_cast<std::size_t>(id) * 9];
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            row[a * 3 + b] = model.transitionCost(
                edge.from, partitionTypeFromIndex(a),
                partitionTypeFromIndex(b), edge.boundary);
        }
    }
}

void
SpSolver::solveSeries(graph::SpNodeId id, const PairCostModel &model,
                      const TypeRestrictions &allowed,
                      std::vector<double> &m,
                      std::vector<std::int8_t> &choice) const
{
    const graph::SpNode &node = _tree.node(id);
    const CNodeId middle = _tree.node(node.left).sink;
    const CondensedNode &mid = _graph.node(middle);
    double nodeCost[3];
    for (PartitionType t : allowed[middle]) {
        nodeCost[partitionTypeIndex(t)] =
            model.nodeCost(middle, _dims[middle], mid.junction, t);
    }
    const double *left = &m[static_cast<std::size_t>(node.left) * 9];
    const double *right = &m[static_cast<std::size_t>(node.right) * 9];
    double *row = &m[static_cast<std::size_t>(id) * 9];
    std::int8_t *pick = &choice[static_cast<std::size_t>(id) * 9];
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            double best = kInf;
            std::int8_t best_c = -1;
            for (PartitionType t : allowed[middle]) {
                const int c = partitionTypeIndex(t);
                const double total =
                    left[a * 3 + c] + nodeCost[c] + right[c * 3 + b];
                if (total < best) {
                    best = total;
                    best_c = static_cast<std::int8_t>(c);
                }
            }
            row[a * 3 + b] = best;
            pick[a * 3 + b] = best_c;
        }
    }
}

void
SpSolver::solveResidual(graph::SpNodeId id, const PairCostModel &model,
                        const TypeRestrictions &allowed,
                        std::vector<double> &m,
                        std::vector<std::int8_t> &assign) const
{
    const graph::SpNode &node = _tree.node(id);
    const CompiledNode &compiled = _compiled[id];
    const std::size_t k = node.internal.size();

    // Position of each internal vertex inside the assignment vector.
    // Region sizes are bounded by kResidualExactLimit, so a linear
    // scan per edge endpoint stays cheap.
    auto slotOf = [&](CNodeId v) {
        for (std::size_t i = 0; i < k; ++i) {
            if (node.internal[i] == v)
                return i;
        }
        throw util::InternalError("residual vertex lookup failed");
    };

    double *row = &m[static_cast<std::size_t>(id) * 9];
    std::fill(row, row + 9, kInf);

    // Odometer over the allowed types of every internal vertex, in
    // lexicographic order for deterministic tie-breaking.
    std::vector<std::size_t> digit(k, 0);
    std::vector<PartitionType> types(k, PartitionType::TypeI);
    for (std::size_t i = 0; i < k; ++i)
        types[i] = allowed[node.internal[i]].front();
    while (true) {
        double base = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            const CNodeId v = node.internal[i];
            const CondensedNode &cn = _graph.node(v);
            base += model.nodeCost(v, _dims[v], cn.junction, types[i]);
        }
        for (const CompiledEdge &edge : compiled.innerEdges) {
            base += model.transitionCost(edge.from,
                                         types[slotOf(edge.from)],
                                         types[slotOf(edge.to)],
                                         edge.boundary);
        }
        for (int a = 0; a < 3; ++a) {
            for (int b = 0; b < 3; ++b) {
                double total = base;
                for (const CompiledEdge &edge : compiled.crossEdges) {
                    if (edge.from == node.source) {
                        total += model.transitionCost(
                            edge.from, partitionTypeFromIndex(a),
                            types[slotOf(edge.to)], edge.boundary);
                    } else {
                        total += model.transitionCost(
                            edge.from, types[slotOf(edge.from)],
                            partitionTypeFromIndex(b), edge.boundary);
                    }
                }
                if (total < row[a * 3 + b]) {
                    row[a * 3 + b] = total;
                    std::int8_t *slot =
                        &assign[(static_cast<std::size_t>(id) * 9 +
                                 static_cast<std::size_t>(a * 3 + b)) *
                                kResidualExactLimit];
                    for (std::size_t i = 0; i < k; ++i) {
                        slot[i] = static_cast<std::int8_t>(
                            partitionTypeIndex(types[i]));
                    }
                }
            }
        }
        // Advance the odometer.
        std::size_t pos = 0;
        while (pos < k) {
            if (++digit[pos] < allowed[node.internal[pos]].size()) {
                types[pos] = allowed[node.internal[pos]][digit[pos]];
                break;
            }
            digit[pos] = 0;
            types[pos] = allowed[node.internal[pos]].front();
            ++pos;
        }
        if (pos == k)
            break;
    }
}

ChainDpResult
SpSolver::solve(const PairCostModel &model,
                const TypeRestrictions &allowed) const
{
    ACCPAR_REQUIRE(allowed.size() == _graph.size(),
                   "type restriction size mismatch");
    for (std::size_t v = 0; v < allowed.size(); ++v) {
        ACCPAR_REQUIRE(!allowed[v].empty(),
                       "no allowed types for node "
                           << _graph.node(static_cast<CNodeId>(v)).name);
    }

    ChainDpResult result;
    result.types.assign(_graph.size(), PartitionType::TypeI);

    if (_tree.root() == graph::kNoSpNode) {
        // Single condensed node: no edges, just the node's own cost.
        const CNodeId only = _graph.source();
        const CondensedNode &cn = _graph.node(only);
        double best = kInf;
        for (PartitionType t : allowed[only]) {
            const double cost =
                model.nodeCost(only, _dims[only], cn.junction, t);
            if (cost < best) {
                best = cost;
                result.types[only] = t;
            }
        }
        result.cost = best;
        return result;
    }

    std::vector<double> m(_tree.size() * 9, kInf);
    std::vector<std::int8_t> choice(_tree.size() * 9, -1);
    std::vector<std::int8_t> residual(
        _tree.size() * 9 * kResidualExactLimit, -1);

    // Children are always created before their parents, so a single
    // id-ordered pass is a bottom-up tree walk.
    for (std::size_t id = 0; id < _tree.size(); ++id) {
        const graph::SpNode &node = _tree.node(static_cast<int>(id));
        switch (node.kind) {
          case graph::SpKind::Leaf:
            solveLeaf(static_cast<int>(id), model, m);
            break;
          case graph::SpKind::Series:
            solveSeries(static_cast<int>(id), model, allowed, m, choice);
            break;
          case graph::SpKind::Parallel: {
            const double *left =
                &m[static_cast<std::size_t>(node.left) * 9];
            const double *right =
                &m[static_cast<std::size_t>(node.right) * 9];
            double *row = &m[id * 9];
            for (int ab = 0; ab < 9; ++ab)
                row[ab] = left[ab] + right[ab];
            break;
          }
          case graph::SpKind::Residual:
            solveResidual(static_cast<int>(id), model, allowed, m,
                          residual);
            break;
        }
    }

    const graph::SpNode &root = _tree.node(_tree.root());
    const CNodeId s = root.source;
    const CNodeId t = root.sink;
    const CondensedNode &sn = _graph.node(s);
    const CondensedNode &tn = _graph.node(t);
    const double *row = &m[static_cast<std::size_t>(_tree.root()) * 9];
    double best = kInf;
    int best_a = -1;
    int best_b = -1;
    for (PartitionType ta : allowed[s]) {
        const int a = partitionTypeIndex(ta);
        const double s_cost = model.nodeCost(s, _dims[s], sn.junction, ta);
        for (PartitionType tb : allowed[t]) {
            const int b = partitionTypeIndex(tb);
            const double total =
                s_cost + row[a * 3 + b] +
                model.nodeCost(t, _dims[t], tn.junction, tb);
            if (total < best) {
                best = total;
                best_a = a;
                best_b = b;
            }
        }
    }
    ACCPAR_ASSERT(best_a >= 0, "sp solve found no feasible assignment");

    result.cost = best;
    result.types[s] = partitionTypeFromIndex(best_a);
    result.types[t] = partitionTypeFromIndex(best_b);

    // Backtrack the endpoint-conditioned choices top-down.
    struct Frame
    {
        graph::SpNodeId id;
        int a;
        int b;
    };
    std::vector<Frame> stack{{_tree.root(), best_a, best_b}};
    while (!stack.empty()) {
        const Frame frame = stack.back();
        stack.pop_back();
        const graph::SpNode &node = _tree.node(frame.id);
        switch (node.kind) {
          case graph::SpKind::Leaf:
            break;
          case graph::SpKind::Series: {
            const int c = choice[static_cast<std::size_t>(frame.id) * 9 +
                                 static_cast<std::size_t>(frame.a * 3 +
                                                          frame.b)];
            ACCPAR_ASSERT(c >= 0, "series backtrack without a choice");
            const CNodeId middle = _tree.node(node.left).sink;
            result.types[middle] = partitionTypeFromIndex(c);
            stack.push_back({node.left, frame.a, c});
            stack.push_back({node.right, c, frame.b});
            break;
          }
          case graph::SpKind::Parallel:
            stack.push_back({node.left, frame.a, frame.b});
            stack.push_back({node.right, frame.a, frame.b});
            break;
          case graph::SpKind::Residual: {
            const std::int8_t *slot =
                &residual[(static_cast<std::size_t>(frame.id) * 9 +
                           static_cast<std::size_t>(frame.a * 3 +
                                                    frame.b)) *
                          kResidualExactLimit];
            for (std::size_t i = 0; i < node.internal.size(); ++i) {
                ACCPAR_ASSERT(slot[i] >= 0,
                              "residual backtrack without an "
                              "assignment");
                result.types[node.internal[i]] =
                    partitionTypeFromIndex(slot[i]);
            }
            break;
          }
        }
    }
    return result;
}

} // namespace accpar::core
