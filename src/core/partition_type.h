/**
 * @file
 * The three basic tensor partitioning types of paper §3.2.
 *
 * Exactly one of the three dimensions appearing in the forward/backward/
 * gradient multiplications can be free in a partition:
 *  - Type-I   partitions B      (batch; classic data parallelism),
 *  - Type-II  partitions D_i    (input channels; model parallelism),
 *  - Type-III partitions D_o    (output channels; the configuration
 *    overlooked by OWT and HyPar).
 */

#ifndef ACCPAR_CORE_PARTITION_TYPE_H
#define ACCPAR_CORE_PARTITION_TYPE_H

#include <array>
#include <string>
#include <vector>

namespace accpar::core {

/** One of the three basic partitioning types. */
enum class PartitionType : int { TypeI = 0, TypeII = 1, TypeIII = 2 };

/** Number of basic types. */
inline constexpr int kPartitionTypeCount = 3;

/** All types, in paper order. */
inline constexpr std::array<PartitionType, 3> kAllPartitionTypes = {
    PartitionType::TypeI, PartitionType::TypeII, PartitionType::TypeIII};

/** Dense index in [0, 3) of @p t. */
constexpr int
partitionTypeIndex(PartitionType t)
{
    return static_cast<int>(t);
}

/** Inverse of partitionTypeIndex; @p index must be in [0, 3). */
PartitionType partitionTypeFromIndex(int index);

/** "Type-I" / "Type-II" / "Type-III". */
const char *partitionTypeName(PartitionType t);

/** Short tag used in compact reports: "I" / "II" / "III". */
const char *partitionTypeTag(PartitionType t);

/** Renders a per-layer assignment as e.g. "I,I,II,III". */
std::string formatTypeSequence(const std::vector<PartitionType> &types);

} // namespace accpar::core

#endif // ACCPAR_CORE_PARTITION_TYPE_H
