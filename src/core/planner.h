/**
 * @file
 * The accpar::Planner facade: one entry point for planning, strategy
 * comparison, and sweeps.
 *
 * Callers describe what to plan with a PlanRequest (model, array,
 * options, strategy name, jobs) and get a PlanResult back (plan,
 * per-level cost breakdown, timing, cache statistics) — no caller needs
 * to assemble PartitionProblem, PairCostModel, or per-strategy solver
 * options by hand. The Planner owns the parallel planning engine: a
 * fixed-size thread pool (sibling hierarchy subtrees and compared
 * strategies solve concurrently) and a cost memo cache reused across
 * calls, so sweeps pay for shared sub-evaluations once.
 *
 * Determinism guarantee: for any jobs value the produced plans are
 * bit-identical to a sequential solve. Parallel tasks only ever write
 * disjoint result slots, reductions happen in fixed index order, and
 * memoized cost terms are pure functions of their exact keys.
 */

#ifndef ACCPAR_CORE_PLANNER_H
#define ACCPAR_CORE_PLANNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/certificate.h"
#include "core/cost_cache.h"
#include "core/hierarchical_solver.h"
#include "core/plan.h"
#include "graph/graph.h"
#include "hw/group.h"
#include "hw/hierarchy.h"
#include "models/catalog.h"
#include "sim/training_sim.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace accpar {

namespace search {
struct SearchReport;
}

/** Library version reported by `accpar --version`. */
inline constexpr char kAccParVersion[] = "0.4.0";

/**
 * The unified planning options: every knob of the cost model and the
 * hierarchical search in one documented struct. This supersedes the
 * old two-level split where callers set core::CostModelConfig fields
 * through core::SolverOptions::cost; those structs remain as thin
 * compatibility aliases of this one (SolverOptions for the solver
 * layer, CostModelConfig for the cost model) and existing code keeps
 * compiling, but new code should configure a PlanOptions.
 *
 * Named strategies ("dp", "owt", "hypar", "accpar") define their own
 * canonical knob settings; PlanOptions applies when the request's
 * strategy is "custom".
 */
struct PlanOptions
{
    /** What the per-layer scalar cost measures (default: seconds). */
    core::ObjectiveKind objective = core::ObjectiveKind::Time;
    /** How the two sides combine (default: balanced makespan). */
    core::PairReduce reduce = core::PairReduce::Max;
    /** Include the computation term of the Time objective. */
    bool includeCompute = true;
    /** Bytes per tensor element; bf16 by default (§6.1). */
    double bytesPerElement = 2.0;
    /** Ratio policy; the paper's Eq. 10 linearization by default. */
    core::RatioPolicy ratioPolicy = core::RatioPolicy::PaperLinear;
    /** Bounded fixed-point iterations of (DP, ratio) per node. */
    int ratioIterations = 3;
    /** Allowed types per condensed node; null means unrestricted. */
    core::AllowedTypesFn allowedTypes;
    /** Integer-granularity floor (see SolverOptions::minDimPerSide). */
    double minDimPerSide = 1.0;

    /**
     * Run the static plan verifier over every produced plan (ratio
     * legality, Table-5 transitions, per-board memory feasibility,
     * cost cross-check; see src/analysis/). Honored for named
     * strategies too, not just "custom". Findings land in
     * PlanResult::diagnostics; errors make the call throw ConfigError.
     */
    bool verify = true;
    /** Escalate verifier warnings to failures as well. */
    bool strict = false;

    /**
     * Emit a PlanCertificate alongside the plan (PlanResult::
     * certificate): the solver's full evidence trail — cost tables,
     * Bellman rows, parent pointers, ratio brackets — auditable
     * offline by `accpar audit`. Honored for named strategies too.
     * Excluded from planRequestCanonicalKey: it cannot change the
     * produced plan.
     */
    bool emitCertificate = false;

    /**
     * Budget of the outer-loop hierarchy/assignment search (src/
     * search, DESIGN.md §16). Disabled by default (both budgets 0):
     * the request plans on the seed bi-partition hierarchy exactly as
     * before. With a budget set, a simulated-annealing search over
     * tree shapes and device assignments runs first — evaluating
     * candidates with the same inner DP — and the winning hierarchy
     * (never costlier than the seed's) is what the request's strategy
     * finally solves, verifies, and certifies. Only strategies
     * "accpar" and "custom" support the outer search.
     *
     * budgetIters-only budgets are deterministic and fold into
     * planRequestCanonicalKey; budgetMs makes the outcome wall-clock
     * dependent, so such requests must not be cached (the service
     * layer refuses to).
     */
    struct SearchBudget
    {
        /** Max annealing iterations; 0 = unbounded (budgetMs rules). */
        int budgetIters = 0;
        /** Wall-clock budget in milliseconds; 0 = iterations rule. */
        double budgetMs = 0.0;
        /** Seed of the search's deterministic util::Rng. */
        std::uint64_t seed = 1;

        bool enabled() const
        {
            return budgetIters > 0 || budgetMs > 0.0;
        }
    };
    SearchBudget search;

    /** Expands to the solver layer's (deprecated) two-level view. */
    core::SolverOptions toSolverOptions(const std::string &strategy) const;

    /** Folds a two-level SolverOptions back into the unified view. */
    static PlanOptions fromSolverOptions(const core::SolverOptions &opts);
};

/** One planning job: what to plan and with how much parallelism. */
struct PlanRequest
{
    PlanRequest(graph::Graph model_, hw::AcceleratorGroup array_)
        : model(std::move(model_)), array(std::move(array_))
    {
    }

    /**
     * Model-spec variant: resolves @p modelName (with optional build
     * parameters like "batch" or a transformer's "depth") through
     * models::catalog() instead of taking a pre-built graph. Throws
     * ConfigError for unknown names or rejected parameters.
     */
    PlanRequest(const std::string &modelName,
                const models::ModelParams &params,
                hw::AcceleratorGroup array_);

    /** The DNN to partition. */
    graph::Graph model;
    /** The accelerator array; the bi-partition hierarchy is derived. */
    hw::AcceleratorGroup array;
    /** Knobs for strategy "custom"; ignored by named strategies. */
    PlanOptions options;
    /** "dp", "owt", "hypar", "accpar", or "custom". */
    std::string strategy = "accpar";
    /** Concurrency: 1 = sequential, 0 = hardware concurrency. */
    int jobs = 1;
    /** Simulation knobs used by compare() and simulate(). */
    sim::TrainingSimConfig sim;
};

/** What one planning call produced. */
struct PlanResult
{
    core::PartitionPlan plan;
    std::string strategy;
    std::string model;
    /** Modeled pair cost at the hierarchy root (solver units). */
    double rootCost = 0.0;
    /** Cost breakdown: per-level costs along the leftmost root-to-leaf
     *  path of the hierarchy (what Figure 7 walks). */
    std::vector<double> levelCosts;
    /** Wall-clock planning time. */
    util::Seconds planSeconds = 0.0;
    /** Cost-cache activity attributable to this call (aggregated over
     *  the whole batch for compare()/planBatch()). */
    core::CostCacheStats cacheDelta;
    /** Effective concurrency the call ran with. */
    int jobs = 1;
    /** Post-solve verification findings (empty when verification is
     *  disabled or the plan is clean). */
    std::vector<analysis::Diagnostic> diagnostics;
    /** The solve's evidence trail; null unless
     *  PlanOptions::emitCertificate was set. */
    std::shared_ptr<core::PlanCertificate> certificate;
    /** The hierarchy the plan was actually solved on; null unless the
     *  outer search ran (PlanOptions::search). When set, the plan's
     *  node ids index this hierarchy, not hw::Hierarchy(array) —
     *  rendering and serialization must use it. */
    std::shared_ptr<hw::Hierarchy> searchedHierarchy;
    /** The outer search's report (baseline vs best cost, anytime
     *  curve); null unless the outer search ran. */
    std::shared_ptr<search::SearchReport> searchReport;
};

/**
 * Canonical text encoding of everything that determines a PlanRequest's
 * outcome: the model graph (layers, attributes, wiring, shapes), the
 * accelerator array (per-slice specs and counts, link aggregation) and
 * the effective search options (strategy name plus, for "custom", every
 * PlanOptions knob). Two requests with equal keys produce bit-identical
 * plans, so the key is safe to use as a cross-request memoization key
 * (the service layer's result cache is built on it). `jobs` and `sim`
 * are deliberately excluded — neither changes the produced plan.
 *
 * A request carrying a custom PlanOptions::allowedTypes callback is
 * marked opaque in the key (callbacks cannot be canonicalized); such
 * requests must not be cached across distinct callbacks.
 *
 * An enabled outer-search budget (PlanOptions::search) folds into the
 * key for every strategy — it changes the produced plan. A wall-clock
 * budget (budgetMs > 0) additionally makes the outcome run-to-run
 * dependent; its key is still well-defined, but caching such entries
 * is the caller's mistake (the service layer refuses to).
 */
std::string planRequestCanonicalKey(const PlanRequest &request);

/** 64-bit FNV-1a hash of planRequestCanonicalKey (shard selection,
 *  compact logging; collision-sensitive callers compare full keys). */
std::uint64_t planRequestFingerprint(const PlanRequest &request);

/** compare(): every registered strategy on one request. */
struct StrategyComparison
{
    /** Per-strategy results, in registry order (DP, OWT, HyPar, AccPar). */
    std::vector<PlanResult> plans;
    /** Simulated training step of each plan, same order. */
    std::vector<sim::TrainingRunResult> runs;
    /** Throughput normalized to the first strategy (DP). */
    std::vector<double> speedup;
};

/** simulate(): a plan plus its simulated training step. */
struct SimulationResult
{
    PlanResult plan;
    sim::TrainingRunResult run;
};

/**
 * The planning facade. One Planner may serve many requests; its cost
 * memo cache persists across calls, so repeated sweep points reuse
 * shared cost sub-evaluations (hit rates are visible in PlanResult and
 * cacheStats()). A Planner is not itself thread-safe: issue requests
 * from one thread and let the planner parallelize internally.
 */
class Planner
{
  public:
    Planner();
    ~Planner();

    Planner(const Planner &) = delete;
    Planner &operator=(const Planner &) = delete;

    /** Plans one request with its named (or "custom") strategy. */
    PlanResult plan(const PlanRequest &request);

    /**
     * Plans many requests as one batch over shared infrastructure:
     * requests carrying the same model share a single
     * PartitionProblem (condensation and the series-parallel
     * decomposition are built once up front and read concurrently),
     * and all requests share the planner's thread pool and warm cost
     * cache. Results are in request order and bit-identical to
     * planning each request alone; cacheDelta is aggregated over the
     * whole batch. This is the engine behind `accpar sweep`, the
     * Figure 8 bench and the service's cache-miss path.
     */
    std::vector<PlanResult> planBatch(
        const std::vector<PlanRequest> &requests);

    /**
     * Plans the request under every registered strategy concurrently,
     * then simulates one training step per plan. The request's own
     * strategy name is ignored.
     */
    StrategyComparison compare(const PlanRequest &request);

    /** Plans the request, then simulates one training step. */
    SimulationResult simulate(const PlanRequest &request);

    /** Cumulative cost-cache counters of this planner. */
    core::CostCacheStats cacheStats() const { return _cache.stats(); }

    /** Number of memoized cost terms currently held. */
    std::size_t cacheSize() const { return _cache.size(); }

    /** Drops all memoized cost terms and resets the counters. */
    void clearCache() { _cache.clear(); }

  private:
    util::ThreadPool *poolFor(int jobs);
    static int effectiveJobs(int jobs);
    PlanResult planOne(const PlanRequest &request,
                       const core::PartitionProblem &problem,
                       const hw::Hierarchy &hierarchy,
                       const core::SolveContext &context);

    core::CostCache _cache;
    std::unique_ptr<util::ThreadPool> _pool;
    int _poolJobs = 1;
};

} // namespace accpar

#endif // ACCPAR_CORE_PLANNER_H
