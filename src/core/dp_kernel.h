/**
 * @file
 * Flattened chain-DP kernel.
 *
 * solveChainDp's original formulation recomputed every cost term
 * through the PairCostModel at each DP visit, copied full assignment
 * vectors while backtracking (O(n^2) on deep chains) and re-solved each
 * parallel path for all nine (fork, join) type pairs even though the
 * sub-solve depends only on the three entry states. The compiled form
 * is split in two layers:
 *
 *  - DpStructure compiles the (graph, chain) pair once — the condensed
 *    edge list in CSR form, a mirror of the series-parallel chain with
 *    edge indices resolved, and the coverage check. It is immutable and
 *    shareable: every DpKernel over the same problem (all hierarchy
 *    candidates of a batched solve, every adaptive-ratio iteration)
 *    borrows one structure instead of recompiling it.
 *  - DpKernel adds what depends on the dims and the model: per-edge
 *    boundary element counts, the preallocated DP state tree, and the
 *    per-solve cost tables. Each solve() is:
 *
 *     1. fill a dense [node][type] node-cost table and a per-edge
 *        to-major [to][from] transition table through the model
 *        (memoized when a CostCache is attached), restricted to the
 *        allowed types;
 *     2. run the DP as pure array arithmetic — the relaxation step of
 *        each chain element computes all nine (target, source)
 *        candidates through the dispatched batch kernel
 *        (structure-of-arrays over the 3x3 transition block, see
 *        core/batch_kernels.h and DESIGN.md §17) and reduces them in
 *        the scalar allowed-type order — recording per-(element, type)
 *        parent pointers instead of assignments, and solving each
 *        parallel path once per feasible entry type;
 *     3. reconstruct the winning assignment in one backtracking pass.
 *
 * The adaptive-ratio loop of the hierarchical solver reuses one kernel
 * across all its (alpha, restriction) iterations; only step 1 repeats.
 *
 * Every cost is obtained through the same PairCostModel entry points as
 * before (identical arguments, identical order of comparisons and
 * additions), so results are bit-identical to the original path — the
 * property tests assert this against the frozen legacy copy, and the
 * batch-kernel contract guarantees the vectorized candidates match the
 * scalar relaxation bit for bit.
 */

#ifndef ACCPAR_CORE_DP_KERNEL_H
#define ACCPAR_CORE_DP_KERNEL_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch_kernels.h"
#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"
#include "core/segment.h"

namespace accpar::core {

struct NodeCertificate;

/**
 * The dims- and model-independent compiled structure of one
 * (graph, chain) pair: condensed edges in CSR form and the chain mirror
 * with edge indices resolved. Immutable after construction, so any
 * number of DpKernels (including concurrent ones on different threads)
 * can borrow the same instance; @p graph and the chain's nodes must
 * outlive it.
 */
class DpStructure
{
  public:
    DpStructure(const CondensedGraph &graph, const Chain &chain);
    DpStructure(const DpStructure &) = delete;
    DpStructure &operator=(const DpStructure &) = delete;
    ~DpStructure();

    const CondensedGraph &graph() const { return _graph; }
    std::size_t edgeCount() const { return _edges.size(); }

  private:
    friend class DpKernel;

    struct CompiledPath;

    /** One condensed edge (boundary sizes live in the DpKernel — they
     *  depend on the dims). */
    struct Edge
    {
        CNodeId from = kNoEntryNode;
        CNodeId to = kNoEntryNode;
    };

    /** One chain element with incoming edges resolved to indices. */
    struct CompiledElem
    {
        CNodeId node = kNoEntryNode;
        /** Edge from the previous element (or entry edge for the first
         *  element of a parallel path); -1 for the model's source. */
        std::int32_t edgePrev = -1;
        /** Non-empty for the join of a parallel region. */
        std::vector<CompiledPath> paths;
    };

    struct CompiledChain
    {
        std::vector<CompiledElem> elems;
    };

    /** One branch between a fork and its join. */
    struct CompiledPath
    {
        /** Null for an identity shortcut (empty path). */
        std::unique_ptr<CompiledChain> chain;
        CNodeId lastNode = kNoEntryNode; ///< last node of the branch
        std::int32_t exitEdge = -1;      ///< lastNode -> join
        std::int32_t directEdge = -1;    ///< fork -> join (identity)
    };

    std::int32_t edgeIndex(CNodeId from, CNodeId to) const;
    std::unique_ptr<CompiledChain> compileChain(const Chain &chain,
                                                CNodeId fork);

    const CondensedGraph &_graph;
    std::vector<Edge> _edges;
    /** Incoming-edge range of node v: [_edgeStart[v], _edgeStart[v+1]). */
    std::vector<std::int32_t> _edgeStart;
    std::unique_ptr<CompiledChain> _root;
};

/** Reusable flattened solver for one (graph, chain, dims) triple. */
class DpKernel
{
  public:
    /**
     * Compiles the structure and binds it to @p dims. @p graph,
     * @p chain and @p dims must outlive the kernel and stay unchanged.
     */
    DpKernel(const CondensedGraph &graph, const Chain &chain,
             const std::vector<LayerDims> &dims);

    /**
     * Borrows an already-compiled @p structure (shared across kernels;
     * see DpStructure) and binds it to @p dims. @p structure and
     * @p dims must outlive the kernel and stay unchanged.
     */
    DpKernel(const DpStructure &structure,
             const std::vector<LayerDims> &dims);

    DpKernel(const DpKernel &) = delete;
    DpKernel &operator=(const DpKernel &) = delete;
    ~DpKernel();

    /**
     * Runs the DP under @p model's current configuration and ratio.
     * Equivalent to (and bit-identical with) solveChainDp on the
     * compiled triple. May be called repeatedly with different models,
     * alphas or restrictions; the compiled structure is reused.
     */
    ChainDpResult solve(const PairCostModel &model,
                        const TypeRestrictions &allowed);

    /**
     * Cost of a fixed assignment over the compiled edge list;
     * bit-identical with evaluateAssignment.
     */
    double evaluate(const PairCostModel &model,
                    const std::vector<PartitionType> &types) const;

    /**
     * Copies the evidence of the most recent solve() into @p cert:
     * restrictions, cost tables (cells of disallowed types zeroed —
     * the tables are not cleared between solves, so those cells hold
     * stale values the DP never read), the root-chain Bellman rows
     * with parent pointers, and the recomputed exit argmin. Must be
     * called after solve() with the same @p allowed; alpha fields are
     * the caller's (the kernel does not know the ratio search).
     */
    void extractCertificate(const TypeRestrictions &allowed,
                            NodeCertificate &cert) const;

  private:
    using Edge = DpStructure::Edge;
    using CompiledElem = DpStructure::CompiledElem;
    using CompiledChain = DpStructure::CompiledChain;
    using CompiledPath = DpStructure::CompiledPath;

    /** Preallocated DP state of one chain: costs, parent pointers and
     *  per-path sub-states of parallel elements. */
    struct ChainState
    {
        /** cost[elem * 3 + t]; infinity = infeasible. */
        std::vector<double> cost;
        /** Entry-type index the optimum of (elem, t) came from; -1
         *  when unset (first element or infeasible). */
        std::vector<std::int8_t> parent;
        /** Per parallel element (keyed by its index in the chain):
         *  sub-state per (path, entry type), solved lazily once per
         *  entry type per solve(). */
        struct ParState
        {
            std::vector<std::array<std::unique_ptr<ChainState>, 3>>
                paths;
            std::array<bool, 3> solved{};
        };
        std::vector<std::unique_ptr<ParState>> pars;
    };

    DpKernel(std::unique_ptr<DpStructure> owned,
             const std::vector<LayerDims> &dims);
    void init();

    std::unique_ptr<ChainState>
    makeState(const CompiledChain &chain) const;
    void resetState(const CompiledChain &chain, ChainState &state) const;

    void solveChain(const CompiledChain &chain, ChainState &state,
                    int entry_ti);
    double parallelTransition(const CompiledElem &elem,
                              ChainState::ParState &par, int tti, int t);
    int bestPathExit(const CompiledPath &path, const ChainState &state,
                     int t) const;
    void backtrack(const CompiledChain &chain, const ChainState &state,
                   int exit_ti, std::vector<PartitionType> &types) const;

    /** Non-null only for the compatibility constructor that compiles
     *  its own structure; _structure always refers to the one in use. */
    std::unique_ptr<DpStructure> _owned;
    const DpStructure &_structure;
    const std::vector<LayerDims> &_dims;

    /** Boundary tensor size per structure edge (dims-dependent). */
    std::vector<double> _boundary;

    std::unique_ptr<ChainState> _rootState;

    /** Scratch filled per solve(). */
    const PairCostModel *_model = nullptr;
    const TypeRestrictions *_allowed = nullptr;
    const BatchKernelOps *_ops = nullptr;
    std::vector<double> _nodeTable; ///< [node * 3 + t]
    /**
     * To-major transition table: [edge * 9 + to * 3 + from], one extra
     * trailing element so the batch kernel's four-wide column loads of
     * the last edge stay in bounds (the pad is written by no one after
     * init and read only as a discarded lane).
     */
    std::vector<double> _edgeTableT;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_DP_KERNEL_H
