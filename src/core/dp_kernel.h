/**
 * @file
 * Flattened chain-DP kernel.
 *
 * solveChainDp's original formulation recomputed every cost term
 * through the PairCostModel at each DP visit, copied full assignment
 * vectors while backtracking (O(n^2) on deep chains) and re-solved each
 * parallel path for all nine (fork, join) type pairs even though the
 * sub-solve depends only on the three entry states. A DpKernel compiles
 * the alpha-independent structure of one (graph, chain, dims) triple
 * once — the condensed edge list with precomputed boundary element
 * counts, a mirror of the series-parallel chain with edge indices
 * resolved, and preallocated DP state — so each solve() is:
 *
 *  1. fill a dense [node][type] node-cost table and a per-edge
 *     [from][to] transition table through the model (memoized when a
 *     CostCache is attached), restricted to the allowed types;
 *  2. run the DP as pure array arithmetic, recording per-(element,
 *     type) parent pointers instead of assignments, and solving each
 *     parallel path once per feasible entry type;
 *  3. reconstruct the winning assignment in one backtracking pass.
 *
 * The adaptive-ratio loop of the hierarchical solver reuses one kernel
 * across all its (alpha, restriction) iterations; only step 1 repeats.
 *
 * Every cost is obtained through the same PairCostModel entry points as
 * before (identical arguments, identical order of comparisons and
 * additions), so results are bit-identical to the original path — the
 * property tests assert this against the frozen legacy copy.
 */

#ifndef ACCPAR_CORE_DP_KERNEL_H
#define ACCPAR_CORE_DP_KERNEL_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"
#include "core/segment.h"

namespace accpar::core {

struct NodeCertificate;

/** Reusable flattened solver for one (graph, chain, dims) triple. */
class DpKernel
{
  public:
    /**
     * Compiles the structure: condensed edges with boundary element
     * counts, the chain mirror with resolved edge indices, and the DP
     * state tree. @p graph, @p chain and @p dims must outlive the
     * kernel and stay unchanged.
     */
    DpKernel(const CondensedGraph &graph, const Chain &chain,
             const std::vector<LayerDims> &dims);

    DpKernel(const DpKernel &) = delete;
    DpKernel &operator=(const DpKernel &) = delete;
    ~DpKernel();

    /**
     * Runs the DP under @p model's current configuration and ratio.
     * Equivalent to (and bit-identical with) solveChainDp on the
     * compiled triple. May be called repeatedly with different models,
     * alphas or restrictions; the compiled structure is reused.
     */
    ChainDpResult solve(const PairCostModel &model,
                        const TypeRestrictions &allowed);

    /**
     * Cost of a fixed assignment over the compiled edge list;
     * bit-identical with evaluateAssignment.
     */
    double evaluate(const PairCostModel &model,
                    const std::vector<PartitionType> &types) const;

    /**
     * Copies the evidence of the most recent solve() into @p cert:
     * restrictions, cost tables (cells of disallowed types zeroed —
     * the tables are not cleared between solves, so those cells hold
     * stale values the DP never read), the root-chain Bellman rows
     * with parent pointers, and the recomputed exit argmin. Must be
     * called after solve() with the same @p allowed; alpha fields are
     * the caller's (the kernel does not know the ratio search).
     */
    void extractCertificate(const TypeRestrictions &allowed,
                            NodeCertificate &cert) const;

  private:
    struct CompiledPath;
    struct CompiledChain;
    struct ChainState;

    /** One condensed edge with its precomputed boundary tensor size. */
    struct Edge
    {
        CNodeId from = kNoEntryNode;
        CNodeId to = kNoEntryNode;
        double boundary = 0.0;
    };

    /** One chain element with incoming edges resolved to indices. */
    struct CompiledElem
    {
        CNodeId node = kNoEntryNode;
        /** Edge from the previous element (or entry edge for the first
         *  element of a parallel path); -1 for the model's source. */
        std::int32_t edgePrev = -1;
        /** Non-empty for the join of a parallel region. */
        std::vector<CompiledPath> paths;
    };

    struct CompiledChain
    {
        std::vector<CompiledElem> elems;
    };

    /** One branch between a fork and its join. */
    struct CompiledPath
    {
        /** Null for an identity shortcut (empty path). */
        std::unique_ptr<CompiledChain> chain;
        CNodeId lastNode = kNoEntryNode; ///< last node of the branch
        std::int32_t exitEdge = -1;      ///< lastNode -> join
        std::int32_t directEdge = -1;    ///< fork -> join (identity)
    };

    /** Preallocated DP state of one chain: costs, parent pointers and
     *  per-path sub-states of parallel elements. */
    struct ChainState
    {
        /** cost[elem * 3 + t]; infinity = infeasible. */
        std::vector<double> cost;
        /** Entry-type index the optimum of (elem, t) came from; -1
         *  when unset (first element or infeasible). */
        std::vector<std::int8_t> parent;
        /** Per parallel element (keyed by its index in the chain):
         *  sub-state per (path, entry type), solved lazily once per
         *  entry type per solve(). */
        struct ParState
        {
            std::vector<std::array<std::unique_ptr<ChainState>, 3>>
                paths;
            std::array<bool, 3> solved{};
        };
        std::vector<std::unique_ptr<ParState>> pars;
    };

    std::int32_t edgeIndex(CNodeId from, CNodeId to) const;
    std::unique_ptr<CompiledChain> compileChain(const Chain &chain,
                                                CNodeId fork);
    std::unique_ptr<ChainState>
    makeState(const CompiledChain &chain) const;
    void resetState(const CompiledChain &chain, ChainState &state) const;

    void solveChain(const CompiledChain &chain, ChainState &state,
                    int entry_ti);
    double parallelTransition(const CompiledElem &elem,
                              ChainState::ParState &par, int tti, int t);
    int bestPathExit(const CompiledPath &path, const ChainState &state,
                     int t) const;
    void backtrack(const CompiledChain &chain, const ChainState &state,
                   int exit_ti, std::vector<PartitionType> &types) const;

    const CondensedGraph &_graph;
    const std::vector<LayerDims> &_dims;

    std::vector<Edge> _edges;
    /** Incoming-edge range of node v: [_edgeStart[v], _edgeStart[v+1]). */
    std::vector<std::int32_t> _edgeStart;

    std::unique_ptr<CompiledChain> _root;
    std::unique_ptr<ChainState> _rootState;

    /** Scratch filled per solve(). */
    const PairCostModel *_model = nullptr;
    const TypeRestrictions *_allowed = nullptr;
    std::vector<double> _nodeTable; ///< [node * 3 + t]
    std::vector<double> _edgeTable; ///< [edge * 9 + from * 3 + to]
};

} // namespace accpar::core

#endif // ACCPAR_CORE_DP_KERNEL_H
