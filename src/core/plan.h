/**
 * @file
 * Partition plans: the output of a partitioning strategy.
 *
 * A plan assigns, to every internal node of the accelerator hierarchy,
 * a partitioning ratio (the left child group's share) and one basic
 * partition type per condensed-graph node. Leaves carry no decisions.
 */

#ifndef ACCPAR_CORE_PLAN_H
#define ACCPAR_CORE_PLAN_H

#include <optional>
#include <string>
#include <vector>

#include "core/partition_type.h"
#include "hw/hierarchy.h"

namespace accpar::core {

/** Decisions taken at one internal hierarchy node. */
struct NodePlan
{
    /** Ratio of the left child group (the right gets 1 - alpha). */
    double alpha = 0.5;
    /** Chosen type per condensed node, indexed by CNodeId. */
    std::vector<PartitionType> types;
    /** Modeled pair cost of this node's assignment (solver units). */
    double cost = 0.0;
};

/** A full hierarchical partition plan for one (model, array) pair. */
class PartitionPlan
{
  public:
    PartitionPlan() = default;
    PartitionPlan(std::string strategy, std::string model,
                  std::size_t hierarchy_nodes,
                  std::vector<std::string> node_names);

    const std::string &strategyName() const { return _strategy; }
    const std::string &modelName() const { return _model; }

    /** Condensed-node names (for reports), indexed by CNodeId. */
    const std::vector<std::string> &nodeNames() const { return _names; }

    /** Stores the decisions of hierarchy node @p id. */
    void setNodePlan(hw::NodeId id, NodePlan plan);

    /** True when hierarchy node @p id carries decisions. */
    bool hasNodePlan(hw::NodeId id) const;

    /** Decisions at hierarchy node @p id; must exist. */
    const NodePlan &nodePlan(hw::NodeId id) const;

    /**
     * The per-level decisions along the leftmost root-to-leaf path of
     * @p hierarchy — what Figure 7 plots. One entry per internal level.
     */
    std::vector<const NodePlan *>
    leftmostPath(const hw::Hierarchy &hierarchy) const;

    /** Human-readable rendering: per-level types along the left path. */
    std::string toString(const hw::Hierarchy &hierarchy) const;

  private:
    std::string _strategy;
    std::string _model;
    std::vector<std::string> _names;
    std::vector<std::optional<NodePlan>> _nodes;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_PLAN_H
