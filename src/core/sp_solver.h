/**
 * @file
 * Exact partition search over a structural SP-decomposition tree.
 *
 * The DP kernel (core/dp_kernel.h) consumes the legacy chain view of
 * the condensed graph and stays the solver for every chain-convertible
 * model — its plans are frozen byte-for-byte against
 * tests/support/legacy_dp. This solver is the general-DAG companion:
 * it evaluates the §5.2 composition rule directly on the binary
 * decomposition tree of graph/sp_decomposition.h, so any
 * series-parallel condensed graph is solved exactly, and non-SP
 * Residual regions fall back to exhaustive enumeration of their
 * internal assignments while they stay within
 * kResidualExactLimit internal nodes. Larger residual regions are
 * rejected up front with diagnostic AG009 — planning is never
 * silently approximate.
 *
 * Semantics: for a region with terminals (s, t), the solver computes
 * the 3x3 matrix M[a][b] = minimal sum of internal node costs plus
 * region edge transition costs given types[s] = a and types[t] = b.
 * Leaf edges are single transitions, series composition inserts the
 * cut vertex's node cost between its two halves, parallel composition
 * adds element-wise (paths are independent given the endpoint states
 * — exactly the sum-of-path-minima rule), and residual regions take
 * the minimum over all allowed internal assignments. The root then
 * adds the two terminal node costs. The minimized quantity is exactly
 * core::evaluateAssignment, the same objective the chain DP and the
 * brute-force oracle share.
 */

#ifndef ACCPAR_CORE_SP_SOLVER_H
#define ACCPAR_CORE_SP_SOLVER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"
#include "graph/sp_decomposition.h"

namespace accpar::core {

/**
 * Largest Residual internal set the exact fallback enumerates (3^N
 * assignments per endpoint pair). Beyond this, planning fails with
 * AG009 rather than returning an unproven plan.
 */
inline constexpr std::size_t kResidualExactLimit = 9;

/**
 * One compiled SP-tree search over a fixed (graph, tree, dims)
 * triple; solve() may be called repeatedly with different ratios and
 * type restrictions (the adaptive-ratio loop of the hierarchical
 * solver). Construction throws ConfigError (code AG009) when a
 * residual region exceeds kResidualExactLimit.
 */
class SpSolver
{
  public:
    SpSolver(const CondensedGraph &graph, const graph::SpTree &tree,
             const std::vector<LayerDims> &dims);

    /** Minimizes evaluateAssignment under @p allowed; deterministic
     *  (fixed visiting order, strict-improvement argmins). */
    ChainDpResult solve(const PairCostModel &model,
                        const TypeRestrictions &allowed) const;

  private:
    struct CompiledEdge
    {
        CNodeId from = kNoEntryNode;
        CNodeId to = kNoEntryNode;
        double boundary = 0.0;
    };

    /** Per tree node: the region's precompiled edge views. */
    struct CompiledNode
    {
        /** Leaf: the single direct edge. */
        CompiledEdge edge;
        /** Residual: edges among internal vertices. */
        std::vector<CompiledEdge> innerEdges;
        /** Residual: edges incident to a terminal (s -> v or v -> t). */
        std::vector<CompiledEdge> crossEdges;
    };

    void solveLeaf(graph::SpNodeId id, const PairCostModel &model,
                   std::vector<double> &m) const;
    void solveSeries(graph::SpNodeId id, const PairCostModel &model,
                     const TypeRestrictions &allowed,
                     std::vector<double> &m,
                     std::vector<std::int8_t> &choice) const;
    void solveResidual(graph::SpNodeId id, const PairCostModel &model,
                       const TypeRestrictions &allowed,
                       std::vector<double> &m,
                       std::vector<std::int8_t> &assign) const;

    const CondensedGraph &_graph;
    const graph::SpTree &_tree;
    const std::vector<LayerDims> &_dims;
    std::vector<CompiledNode> _compiled;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_SP_SOLVER_H
