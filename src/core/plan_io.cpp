#include "core/plan_io.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace accpar::core {

std::string
hierarchySignature(const hw::Hierarchy &hierarchy)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < hierarchy.nodeCount(); ++i) {
        const hw::HierarchyNode &n =
            hierarchy.node(static_cast<hw::NodeId>(i));
        os << i << ':' << n.group.toString() << ';';
    }
    return os.str();
}

util::Json
planToJson(const PartitionPlan &plan, const hw::Hierarchy &hierarchy)
{
    util::Json doc;
    doc["format"] = "accpar-plan-v1";
    doc["strategy"] = plan.strategyName();
    doc["model"] = plan.modelName();
    doc["hierarchySignature"] = hierarchySignature(hierarchy);

    util::Json names{util::Json::Array{}};
    for (const std::string &name : plan.nodeNames())
        names.push(name);
    doc["layers"] = std::move(names);

    util::Json nodes{util::Json::Array{}};
    for (std::size_t i = 0; i < hierarchy.nodeCount(); ++i) {
        const auto id = static_cast<hw::NodeId>(i);
        if (!plan.hasNodePlan(id))
            continue;
        const NodePlan &np = plan.nodePlan(id);
        util::Json node;
        node["node"] = static_cast<std::int64_t>(id);
        node["alpha"] = np.alpha;
        util::Json ratios;
        ratios.push(np.alpha);
        ratios.push(1.0 - np.alpha);
        node["ratios"] = std::move(ratios);
        node["cost"] = np.cost;
        util::Json types;
        for (PartitionType t : np.types)
            types.push(partitionTypeTag(t));
        node["types"] = std::move(types);
        nodes.push(std::move(node));
    }
    doc["nodes"] = std::move(nodes);
    return doc;
}

namespace {

std::optional<PartitionType>
typeFromTag(const std::string &tag)
{
    for (PartitionType t : kAllPartitionTypes)
        if (tag == partitionTypeTag(t))
            return t;
    return std::nullopt;
}

std::string
nodeLocation(hw::NodeId id)
{
    return "plan node entry for hierarchy node " + std::to_string(id);
}

/**
 * Parses the ratio shares of one node entry: the "ratios" pair when
 * present (checked to be positive and to sum to 1), the legacy
 * "alpha" scalar otherwise. Reports APIO05 and returns nullopt on any
 * violation.
 */
std::optional<double>
parseShares(const util::Json &node, hw::NodeId id,
            analysis::DiagnosticSink &sink)
{
    if (node.contains("ratios")) {
        const util::Json &ratios = node.at("ratios");
        if (ratios.kind() != util::Json::Kind::Array ||
            ratios.asArray().size() != 2 ||
            ratios.asArray()[0].kind() != util::Json::Kind::Number ||
            ratios.asArray()[1].kind() != util::Json::Kind::Number) {
            sink.error("APIO05", nodeLocation(id),
                       "'ratios' must be an array of the two group "
                       "shares",
                       "write \"ratios\": [alpha, 1 - alpha]");
            return std::nullopt;
        }
        const double left = ratios.asArray()[0].asNumber();
        const double right = ratios.asArray()[1].asNumber();
        if (!(left > 0.0) || !(right > 0.0) ||
            std::abs(left + right - 1.0) > 1e-9) {
            std::ostringstream os;
            os << "ratio shares (" << left << ", " << right
               << ") must both be positive and sum to 1";
            sink.error("APIO05", nodeLocation(id), os.str(),
                       "the two sides of a bi-partition split the "
                       "whole tensor between them");
            return std::nullopt;
        }
        return left;
    }
    if (!node.contains("alpha") ||
        node.at("alpha").kind() != util::Json::Kind::Number) {
        sink.error("APIO03", nodeLocation(id),
                   "node entry carries neither 'ratios' nor a numeric "
                   "'alpha'");
        return std::nullopt;
    }
    const double alpha = node.at("alpha").asNumber();
    if (!(alpha > 0.0 && alpha < 1.0)) {
        std::ostringstream os;
        os << "ratio shares (" << alpha << ", " << 1.0 - alpha
           << ") must both be positive and sum to 1";
        sink.error("APIO05", nodeLocation(id), os.str());
        return std::nullopt;
    }
    return alpha;
}

} // namespace

std::optional<PartitionPlan>
planFromJson(const util::Json &json, const hw::Hierarchy &hierarchy,
             analysis::DiagnosticSink &sink)
{
    const std::size_t errors_before = sink.errorCount();

    if (json.kind() != util::Json::Kind::Object ||
        !json.contains("format") ||
        json.at("format").kind() != util::Json::Kind::String ||
        json.at("format").asString() != "accpar-plan-v1") {
        sink.error("APIO01", "plan document",
                   "not an accpar plan document (expected "
                   "\"format\": \"accpar-plan-v1\")",
                   "produce plans with `accpar plan --out` or "
                   "core::savePlan");
        return std::nullopt;
    }
    if (!json.contains("hierarchySignature") ||
        json.at("hierarchySignature").kind() !=
            util::Json::Kind::String ||
        json.at("hierarchySignature").asString() !=
            hierarchySignature(hierarchy)) {
        sink.error("APIO02", "plan document",
                   "plan was produced for a different accelerator "
                   "hierarchy",
                   "re-plan for this array, or validate against the "
                   "array the plan was searched on");
        return std::nullopt;
    }
    for (const char *key : {"strategy", "model"}) {
        if (!json.contains(key) ||
            json.at(key).kind() != util::Json::Kind::String) {
            sink.error("APIO03", "plan document",
                       std::string("missing or non-string '") + key +
                           "' field");
            return std::nullopt;
        }
    }
    if (!json.contains("layers") ||
        json.at("layers").kind() != util::Json::Kind::Array ||
        !json.contains("nodes") ||
        json.at("nodes").kind() != util::Json::Kind::Array) {
        sink.error("APIO03", "plan document",
                   "missing 'layers' or 'nodes' array");
        return std::nullopt;
    }

    std::vector<std::string> names;
    for (const util::Json &n : json.at("layers").asArray()) {
        if (n.kind() != util::Json::Kind::String) {
            sink.error("APIO03", "plan document",
                       "'layers' entries must be layer-name strings");
            return std::nullopt;
        }
        names.push_back(n.asString());
    }

    PartitionPlan plan(json.at("strategy").asString(),
                       json.at("model").asString(),
                       hierarchy.nodeCount(), names);

    std::set<hw::NodeId> covered;
    for (const util::Json &node : json.at("nodes").asArray()) {
        if (node.kind() != util::Json::Kind::Object ||
            !node.contains("node") ||
            node.at("node").kind() != util::Json::Kind::Number) {
            sink.error("APIO03", "plan document",
                       "every 'nodes' entry must be an object with a "
                       "numeric 'node' id");
            continue;
        }
        const auto id =
            static_cast<hw::NodeId>(node.at("node").asInt());
        if (id < 0 ||
            static_cast<std::size_t>(id) >= hierarchy.nodeCount()) {
            sink.error("APIO07", nodeLocation(id),
                       "hierarchy node id is out of range (the array "
                       "has " +
                           std::to_string(hierarchy.nodeCount()) +
                           " nodes)");
            continue;
        }
        if (hierarchy.node(id).isLeaf()) {
            sink.error("APIO07", nodeLocation(id),
                       "hierarchy node is a leaf; leaves carry no "
                       "decisions",
                       "only internal (pair) nodes appear in 'nodes'");
            continue;
        }
        if (!covered.insert(id).second) {
            sink.error("APIO06", nodeLocation(id),
                       "duplicate entry for this hierarchy node",
                       "each internal node appears exactly once");
            continue;
        }

        NodePlan np;
        const std::optional<double> alpha =
            parseShares(node, id, sink);
        if (!alpha)
            continue;
        np.alpha = *alpha;

        if (!node.contains("cost") ||
            node.at("cost").kind() != util::Json::Kind::Number) {
            sink.error("APIO03", nodeLocation(id),
                       "missing or non-numeric 'cost' field");
            continue;
        }
        np.cost = node.at("cost").asNumber();

        if (!node.contains("types") ||
            node.at("types").kind() != util::Json::Kind::Array) {
            sink.error("APIO03", nodeLocation(id),
                       "missing 'types' array");
            continue;
        }
        bool types_ok = true;
        for (const util::Json &t : node.at("types").asArray()) {
            const std::string tag =
                t.kind() == util::Json::Kind::String ? t.asString()
                                                     : t.dump();
            const std::optional<PartitionType> type = typeFromTag(tag);
            if (!type) {
                sink.error("APIO04", nodeLocation(id),
                           "partition type tag '" + tag +
                               "' is not a legal Table 5 endpoint; "
                               "every transition through it falls "
                               "outside the nine legal patterns",
                           "use \"I\", \"II\" or \"III\"");
                types_ok = false;
                continue;
            }
            np.types.push_back(*type);
        }
        if (!types_ok)
            continue;
        if (np.types.size() != names.size()) {
            sink.error("APIO03", nodeLocation(id),
                       "'types' lists " +
                           std::to_string(np.types.size()) +
                           " entries but the plan has " +
                           std::to_string(names.size()) + " layers");
            continue;
        }
        plan.setNodePlan(id, std::move(np));
    }

    for (hw::NodeId id : hierarchy.internalNodes()) {
        if (!plan.hasNodePlan(id)) {
            sink.error("APIO03", nodeLocation(id),
                       "plan document misses this hierarchy node",
                       "every internal node needs one 'nodes' entry");
        }
    }

    if (sink.errorCount() != errors_before)
        return std::nullopt;
    return plan;
}

PartitionPlan
planFromJson(const util::Json &json, const hw::Hierarchy &hierarchy)
{
    analysis::DiagnosticSink sink;
    std::optional<PartitionPlan> plan =
        planFromJson(json, hierarchy, sink);
    if (!plan) {
        sink.sort();
        throw util::ConfigError("invalid plan document:\n" +
                                sink.renderText());
    }
    return *std::move(plan);
}

void
savePlan(const PartitionPlan &plan, const hw::Hierarchy &hierarchy,
         const std::string &path)
{
    std::ofstream out(path);
    ACCPAR_REQUIRE(out.is_open(), "cannot open " << path
                                                 << " for writing");
    out << planToJson(plan, hierarchy).dump(2) << '\n';
}

std::optional<PartitionPlan>
loadPlan(const std::string &path, const hw::Hierarchy &hierarchy,
         analysis::DiagnosticSink &sink)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        sink.error("APIO01", path, "cannot open plan file for reading",
                   "check the path and permissions");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    util::Json doc;
    try {
        doc = util::Json::parse(text.str());
    } catch (const util::Error &e) {
        sink.error("APIO01", path,
                   std::string("file is not valid JSON: ") + e.what());
        return std::nullopt;
    }
    return planFromJson(doc, hierarchy, sink);
}

PartitionPlan
loadPlan(const std::string &path, const hw::Hierarchy &hierarchy)
{
    analysis::DiagnosticSink sink;
    std::optional<PartitionPlan> plan =
        loadPlan(path, hierarchy, sink);
    if (!plan) {
        sink.sort();
        throw util::ConfigError("invalid plan file " + path + ":\n" +
                                sink.renderText());
    }
    return *std::move(plan);
}

void
writeTypeMatrixCsv(const PartitionPlan &plan,
                   const hw::Hierarchy &hierarchy,
                   const std::string &path)
{
    std::vector<std::string> header = {"level", "alpha"};
    for (const std::string &name : plan.nodeNames())
        header.push_back(name);
    util::CsvWriter csv(header);

    const auto levels = plan.leftmostPath(hierarchy);
    for (std::size_t level = 0; level < levels.size(); ++level) {
        std::vector<std::string> row = {std::to_string(level + 1)};
        std::ostringstream alpha;
        alpha.precision(6);
        alpha << levels[level]->alpha;
        row.push_back(alpha.str());
        for (PartitionType t : levels[level]->types)
            row.push_back(partitionTypeTag(t));
        csv.addRow(std::move(row));
    }
    csv.writeFile(path);
}

} // namespace accpar::core
