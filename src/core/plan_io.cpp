#include "core/plan_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace accpar::core {

namespace {

/** Stable signature of a hierarchy (node structure + group makeup). */
std::string
hierarchySignature(const hw::Hierarchy &hierarchy)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < hierarchy.nodeCount(); ++i) {
        const hw::HierarchyNode &n =
            hierarchy.node(static_cast<hw::NodeId>(i));
        os << i << ':' << n.group.toString() << ';';
    }
    return os.str();
}

} // namespace

util::Json
planToJson(const PartitionPlan &plan, const hw::Hierarchy &hierarchy)
{
    util::Json doc;
    doc["format"] = "accpar-plan-v1";
    doc["strategy"] = plan.strategyName();
    doc["model"] = plan.modelName();
    doc["hierarchySignature"] = hierarchySignature(hierarchy);

    util::Json names;
    for (const std::string &name : plan.nodeNames())
        names.push(name);
    doc["layers"] = std::move(names);

    util::Json nodes;
    for (std::size_t i = 0; i < hierarchy.nodeCount(); ++i) {
        const auto id = static_cast<hw::NodeId>(i);
        if (!plan.hasNodePlan(id))
            continue;
        const NodePlan &np = plan.nodePlan(id);
        util::Json node;
        node["node"] = static_cast<std::int64_t>(id);
        node["alpha"] = np.alpha;
        node["cost"] = np.cost;
        util::Json types;
        for (PartitionType t : np.types)
            types.push(partitionTypeTag(t));
        node["types"] = std::move(types);
        nodes.push(std::move(node));
    }
    doc["nodes"] = std::move(nodes);
    return doc;
}

namespace {

PartitionType
typeFromTag(const std::string &tag)
{
    for (PartitionType t : kAllPartitionTypes)
        if (tag == partitionTypeTag(t))
            return t;
    throw util::ConfigError("unknown partition type tag '" + tag + "'");
}

} // namespace

PartitionPlan
planFromJson(const util::Json &json, const hw::Hierarchy &hierarchy)
{
    ACCPAR_REQUIRE(json.contains("format") &&
                       json.at("format").asString() == "accpar-plan-v1",
                   "not an accpar plan document");
    ACCPAR_REQUIRE(json.at("hierarchySignature").asString() ==
                       hierarchySignature(hierarchy),
                   "plan was produced for a different accelerator "
                   "hierarchy");

    std::vector<std::string> names;
    for (const util::Json &n : json.at("layers").asArray())
        names.push_back(n.asString());

    PartitionPlan plan(json.at("strategy").asString(),
                       json.at("model").asString(),
                       hierarchy.nodeCount(), names);

    for (const util::Json &node : json.at("nodes").asArray()) {
        const auto id =
            static_cast<hw::NodeId>(node.at("node").asInt());
        NodePlan np;
        np.alpha = node.at("alpha").asNumber();
        np.cost = node.at("cost").asNumber();
        for (const util::Json &t : node.at("types").asArray())
            np.types.push_back(typeFromTag(t.asString()));
        plan.setNodePlan(id, std::move(np));
    }

    for (hw::NodeId id : hierarchy.internalNodes())
        ACCPAR_REQUIRE(plan.hasNodePlan(id),
                       "plan document misses hierarchy node " << id);
    return plan;
}

void
savePlan(const PartitionPlan &plan, const hw::Hierarchy &hierarchy,
         const std::string &path)
{
    std::ofstream out(path);
    ACCPAR_REQUIRE(out.is_open(), "cannot open " << path
                                                 << " for writing");
    out << planToJson(plan, hierarchy).dump(2) << '\n';
}

PartitionPlan
loadPlan(const std::string &path, const hw::Hierarchy &hierarchy)
{
    std::ifstream in(path);
    ACCPAR_REQUIRE(in.is_open(), "cannot open " << path
                                                << " for reading");
    std::ostringstream text;
    text << in.rdbuf();
    return planFromJson(util::Json::parse(text.str()), hierarchy);
}

void
writeTypeMatrixCsv(const PartitionPlan &plan,
                   const hw::Hierarchy &hierarchy,
                   const std::string &path)
{
    std::vector<std::string> header = {"level", "alpha"};
    for (const std::string &name : plan.nodeNames())
        header.push_back(name);
    util::CsvWriter csv(header);

    const auto levels = plan.leftmostPath(hierarchy);
    for (std::size_t level = 0; level < levels.size(); ++level) {
        std::vector<std::string> row = {std::to_string(level + 1)};
        std::ostringstream alpha;
        alpha.precision(6);
        alpha << levels[level]->alpha;
        row.push_back(alpha.str());
        for (PartitionType t : levels[level]->types)
            row.push_back(partitionTypeTag(t));
        csv.addRow(std::move(row));
    }
    csv.writeFile(path);
}

} // namespace accpar::core
