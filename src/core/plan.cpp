#include "core/plan.h"

#include <sstream>

#include "util/error.h"

namespace accpar::core {

PartitionPlan::PartitionPlan(std::string strategy, std::string model,
                             std::size_t hierarchy_nodes,
                             std::vector<std::string> node_names)
    : _strategy(std::move(strategy)),
      _model(std::move(model)),
      _names(std::move(node_names)),
      _nodes(hierarchy_nodes)
{
}

void
PartitionPlan::setNodePlan(hw::NodeId id, NodePlan plan)
{
    ACCPAR_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < _nodes.size(),
                   "hierarchy node id out of range: " << id);
    ACCPAR_REQUIRE(plan.types.size() == _names.size(),
                   "node plan has " << plan.types.size()
                                    << " types, expected "
                                    << _names.size());
    _nodes[id] = std::move(plan);
}

bool
PartitionPlan::hasNodePlan(hw::NodeId id) const
{
    return id >= 0 && static_cast<std::size_t>(id) < _nodes.size() &&
           _nodes[id].has_value();
}

const NodePlan &
PartitionPlan::nodePlan(hw::NodeId id) const
{
    ACCPAR_REQUIRE(hasNodePlan(id),
                   "no plan recorded for hierarchy node " << id);
    return *_nodes[id];
}

std::vector<const NodePlan *>
PartitionPlan::leftmostPath(const hw::Hierarchy &hierarchy) const
{
    std::vector<const NodePlan *> out;
    hw::NodeId cur = hierarchy.root();
    while (!hierarchy.node(cur).isLeaf()) {
        out.push_back(&nodePlan(cur));
        cur = hierarchy.node(cur).left;
    }
    return out;
}

std::string
PartitionPlan::toString(const hw::Hierarchy &hierarchy) const
{
    std::ostringstream os;
    os << _strategy << " plan for " << _model << ":\n";
    const auto path = leftmostPath(hierarchy);
    for (std::size_t level = 0; level < path.size(); ++level) {
        os << "  level " << level << " (alpha="
           << path[level]->alpha << "): "
           << formatTypeSequence(path[level]->types) << '\n';
    }
    return os.str();
}

} // namespace accpar::core
