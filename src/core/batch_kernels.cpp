/**
 * @file
 * Scalar reference kernels, the NEON instantiation (baseline on
 * AArch64, so it lives in this default-flags translation unit), and
 * the runtime dispatcher. The AVX2 instantiation lives in
 * core/batch_kernels_avx2.cpp under its own target flags; this file
 * only consults it through avx2BatchKernelOps().
 */

#include "core/batch_kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#if defined(ACCPAR_SIMD_ENABLED) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define ACCPAR_BATCH_KERNELS_NEON 1
#include "core/batch_kernels_impl.h"
#endif

namespace accpar::core {

namespace {

/**
 * Scalar candidates9: the reference operation sequence every vector
 * lane must reproduce — (prev + trans) + node, left-associated, per
 * (target, source) cell of the 3x3 transition block.
 */
void
scalarCandidates9(const double *prev, const double *transT,
                  const double *node, double *cand)
{
    for (int t = 0; t < 3; ++t) {
        const double node_cost = node[t];
        const double *column = transT + 3 * t;
        double *out = cand + 3 * t;
        out[0] = (prev[0] + column[0]) + node_cost;
        out[1] = (prev[1] + column[1]) + node_cost;
        out[2] = (prev[2] + column[2]) + node_cost;
    }
}

/**
 * Scalar ratioBothSides: term-major single pass with exactly n lanes
 * (no padding), the output arrays doubling as the accumulators. Each
 * lane sees the same per-term operation sequence as two sequential
 * sideTotal() walks, so results are bit-identical per side.
 */
void
scalarRatioBothSides(const RatioTermsView &view, const double *alphas,
                     std::size_t n, double *outLeft, double *outRight)
{
    for (std::size_t k = 0; k < n; ++k) {
        outLeft[k] = 0.0;
        outRight[k] = 0.0;
    }
    for (std::size_t i = 0; i < view.count; ++i) {
        switch (view.kind[i]) {
          case RatioTermsView::NodeComm: {
            const double a = view.a[i];
            for (std::size_t k = 0; k < n; ++k) {
                outLeft[k] += a;
                outRight[k] += a;
            }
            break;
          }
          case RatioTermsView::NodeTime: {
            const double a0 = view.aSide0[i];
            const double a1 = view.aSide1[i];
            if (view.includeCompute) {
                const double flops = view.flops[i];
                for (std::size_t k = 0; k < n; ++k) {
                    const double own_l = alphas[k];
                    const double own_r = 1.0 - alphas[k];
                    double cost_l = a0;
                    cost_l += own_l * flops / view.compute[0];
                    double cost_r = a1;
                    cost_r += own_r * flops / view.compute[1];
                    outLeft[k] += cost_l;
                    outRight[k] += cost_r;
                }
            } else {
                for (std::size_t k = 0; k < n; ++k) {
                    outLeft[k] += a0;
                    outRight[k] += a1;
                }
            }
            break;
          }
          case RatioTermsView::EdgeBilinear: {
            const double a = view.a[i];
            for (std::size_t k = 0; k < n; ++k) {
                const double own_l = alphas[k];
                const double other_l = 1.0 - own_l;
                const double own_r = 1.0 - alphas[k];
                const double other_r = 1.0 - own_r;
                const double x_l = own_l * other_l * a;
                const double x_r = own_r * other_r * a;
                const double elems_l = x_l + x_l;
                const double elems_r = x_r + x_r;
                outLeft[k] += view.time
                                  ? elems_l * view.bpe / view.link[0]
                                  : elems_l;
                outRight[k] += view.time
                                   ? elems_r * view.bpe / view.link[1]
                                   : elems_r;
            }
            break;
          }
          case RatioTermsView::EdgeOther: {
            const double a = view.a[i];
            for (std::size_t k = 0; k < n; ++k) {
                const double other_l = 1.0 - alphas[k];
                const double other_r = 1.0 - (1.0 - alphas[k]);
                const double elems_l = other_l * a;
                const double elems_r = other_r * a;
                outLeft[k] += view.time
                                  ? elems_l * view.bpe / view.link[0]
                                  : elems_l;
                outRight[k] += view.time
                                   ? elems_r * view.bpe / view.link[1]
                                   : elems_r;
            }
            break;
          }
        }
    }
}

constexpr BatchKernelOps kScalarOps = {"scalar", 1, &scalarCandidates9,
                                       &scalarRatioBothSides};

#if defined(ACCPAR_BATCH_KERNELS_NEON)
constexpr BatchKernelOps kNeonOps = {
    "neon", util::simd::kLanes,
    &kernels::candidates9<util::simd::neon::Vec4>,
    &kernels::ratioBothSides<util::simd::neon::Vec4>};
#endif

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
envForcesScalar()
{
    const char *env = std::getenv("ACCPAR_SIMD");
    if (!env)
        return false;
    const std::string value(env);
    return value == "scalar" || value == "off" || value == "OFF" ||
           value == "0";
}

const BatchKernelOps *
detectOps()
{
    if (envForcesScalar())
        return &kScalarOps;
    const BatchKernelOps *avx2 = avx2BatchKernelOps();
    if (avx2 != nullptr && cpuSupportsAvx2())
        return avx2;
#if defined(ACCPAR_BATCH_KERNELS_NEON)
    return &kNeonOps;
#else
    return &kScalarOps;
#endif
}

std::atomic<bool> g_forceScalar{false};

} // namespace

const BatchKernelOps &
scalarBatchKernelOps()
{
    return kScalarOps;
}

const BatchKernelOps &
activeBatchKernelOps()
{
    // Detection is memoized; the force flag stays a per-call override
    // so tests can flip backends within one process.
    static const BatchKernelOps *const detected = detectOps();
    return g_forceScalar.load(std::memory_order_relaxed) ? kScalarOps
                                                         : *detected;
}

bool
setBatchKernelForceScalar(bool force)
{
    return g_forceScalar.exchange(force, std::memory_order_relaxed);
}

const char *
batchKernelVariantName()
{
    return activeBatchKernelOps().name;
}

int
batchKernelLanes()
{
    return activeBatchKernelOps().lanes;
}

} // namespace accpar::core
