/**
 * @file
 * Partitioning-ratio solving (paper §5.3).
 *
 * AccPar balances the sum of computation and communication cost between
 * the two groups of a pair by solving Eq. 10 for the ratio alpha. The
 * paper treats both cost terms as linear in alpha; we implement that
 * linearized rebalance step (RatioPolicy::PaperLinear, iterated to a fixed
 * point by the hierarchical solver) plus an exact numeric balance on the
 * true piecewise cost as an ablation (RatioPolicy::ExactBalance).
 */

#ifndef ACCPAR_CORE_RATIO_SOLVER_H
#define ACCPAR_CORE_RATIO_SOLVER_H

#include <vector>

#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"

namespace accpar::core {

/** How the partitioning ratio of a group pair is chosen. */
enum class RatioPolicy
{
    /** Always 0.5 (DP, OWT, HyPar: equal partitioning). */
    Fixed,
    /** alpha = c_L / (c_L + c_R); compute-only heuristic. */
    ComputeProportional,
    /** Eq. 10 linearized rebalance, iterated with the DP (AccPar). */
    PaperLinear,
    /** Ternary search on the exact max(T_L, T_R) (ablation). */
    ExactBalance,
};

/** Short name for reports. */
const char *ratioPolicyName(RatioPolicy policy);

/**
 * Total cost of one side for a fixed type assignment under @p model's
 * current ratio: sum of per-node and per-edge side costs.
 */
double sideTotalCost(const CondensedGraph &graph,
                     const std::vector<LayerDims> &dims,
                     const PairCostModel &model,
                     const std::vector<PartitionType> &types, Side side);

/**
 * One linearized rebalance step (Eq. 10): assuming T_side(alpha) is
 * proportional to the side's ratio, returns the alpha that equalizes the
 * two sides' totals, starting from the model's current ratio. Result is
 * clamped to (0, 1).
 */
double solveRatioLinear(const CondensedGraph &graph,
                        const std::vector<LayerDims> &dims,
                        const PairCostModel &model,
                        const std::vector<PartitionType> &types);

/**
 * Exact balance: ternary search for the alpha minimizing
 * max(T_L(alpha), T_R(alpha)) with the true (piecewise, partly quadratic)
 * cost tables. @p model's alpha is used only as the starting point's
 * configuration; the returned alpha is the optimum found.
 */
double solveRatioExact(const CondensedGraph &graph,
                       const std::vector<LayerDims> &dims,
                       PairCostModel model,
                       const std::vector<PartitionType> &types);

} // namespace accpar::core

#endif // ACCPAR_CORE_RATIO_SOLVER_H
