/**
 * @file
 * Partitioning-ratio solving (paper §5.3).
 *
 * AccPar balances the sum of computation and communication cost between
 * the two groups of a pair by solving Eq. 10 for the ratio alpha. The
 * paper treats both cost terms as linear in alpha; we implement that
 * linearized rebalance step (RatioPolicy::PaperLinear, iterated to a fixed
 * point by the hierarchical solver) plus an exact numeric balance on the
 * true piecewise cost as an ablation (RatioPolicy::ExactBalance).
 */

#ifndef ACCPAR_CORE_RATIO_SOLVER_H
#define ACCPAR_CORE_RATIO_SOLVER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_kernels.h"
#include "core/chain_dp.h"
#include "core/condensed_graph.h"
#include "core/cost_model.h"

namespace accpar::core {

/** How the partitioning ratio of a group pair is chosen. */
enum class RatioPolicy
{
    /** Always 0.5 (DP, OWT, HyPar: equal partitioning). */
    Fixed,
    /** alpha = c_L / (c_L + c_R); compute-only heuristic. */
    ComputeProportional,
    /** Eq. 10 linearized rebalance, iterated with the DP (AccPar). */
    PaperLinear,
    /** Ternary search on the exact max(T_L, T_R) (ablation). */
    ExactBalance,
};

/** Short name for reports. */
const char *ratioPolicyName(RatioPolicy policy);

/** Inverse of ratioPolicyName; nullopt for unknown tags. */
std::optional<RatioPolicy> ratioPolicyFromName(const std::string &name);

/** The final bisection interval of solveRatioExact: the solver's own
 *  evidence that the returned alpha balances the two sides. Degenerate
 *  ([x, x]) when an endpoint wins outright. */
struct RatioBracket
{
    double lo = 0.0;
    double hi = 1.0;
};

/**
 * Total cost of one side for a fixed type assignment under @p model's
 * current ratio: sum of per-node and per-edge side costs. This is the
 * definitional graph walk; RatioCostTables evaluates the same sum from
 * precomputed coefficients.
 */
double sideTotalCost(const CondensedGraph &graph,
                     const std::vector<LayerDims> &dims,
                     const PairCostModel &model,
                     const std::vector<PartitionType> &types, Side side);

/**
 * Alpha-independent coefficients of T_side(alpha) for one fixed type
 * assignment, so each ratio-solver evaluation is a flat pass over a
 * term array instead of a graph walk through the cost model.
 *
 * Every Table 4/5 cost term is linear (or bilinear in alpha(1-alpha))
 * in the ratio with a coefficient that does not depend on it; the
 * constructor extracts those coefficients once (dropping the terms
 * Table 5 makes exactly zero), and sideTotal() replays the remaining
 * terms with the original operation and accumulation order. Keeping
 * the per-term order — rather than folding everything into one
 * aggregate slope — is what makes the result bit-identical with
 * sideTotalCost, so the bisection of solveRatioExact takes exactly the
 * same branch at every step and plans stay byte-identical.
 *
 * The terms are stored structure-of-arrays (one parallel array per
 * coefficient, DESIGN.md §17) so sideTotalsBatch() can sweep many
 * alpha candidates through a single pass over the term arrays via the
 * dispatched batch kernels — one lane per alpha, each lane replaying
 * the sequential operation order bit for bit.
 */
class RatioCostTables
{
  public:
    RatioCostTables(const CondensedGraph &graph,
                    const std::vector<LayerDims> &dims,
                    const PairCostModel &model,
                    const std::vector<PartitionType> &types);

    /** T_side(alpha); bit-identical with sideTotalCost under a model
     *  whose ratio is @p alpha. */
    double sideTotal(Side side, double alpha) const;

    /**
     * Batched alpha sweep: evaluates both sides for @p n candidates in
     * one pass over the term arrays. outLeft[i] and outRight[i] are
     * bit-identical with sideTotal(Side::Left/Right, alphas[i]).
     * Pointers may be unaligned; n may be any count (the kernels pad
     * internally, never storing padding lanes).
     */
    void sideTotalsBatch(const double *alphas, std::size_t n,
                         double *outLeft, double *outRight) const;

    /** Number of nonzero cost terms (bench/test introspection). */
    std::size_t termCount() const { return _kind.size(); }

    /** Borrowed structure-of-arrays view of the term storage for the
     *  batch kernels. Callers that walk the terms many times (the
     *  multisection loop) grab the view and the dispatched ops once
     *  instead of paying sideTotalsBatch's per-call setup. Valid only
     *  while these tables are alive. */
    RatioTermsView view() const;

  private:

    /** Structure-of-arrays term storage; kinds are
     *  RatioTermsView::Kind values, coefficient arrays are parallel
     *  to it (unused coefficients hold 0.0 for their kind). */
    std::vector<std::uint8_t> _kind;
    std::vector<double> _a;      ///< elems / boundary coefficient
    std::vector<double> _aSide0; ///< NodeTime: left intra bytes / link
    std::vector<double> _aSide1; ///< NodeTime: right intra bytes / link
    std::vector<double> _flops;  ///< NodeTime: three-phase FLOPs

    bool _time = true;
    bool _includeCompute = true;
    double _bpe = 2.0;
    double _link[2] = {0.0, 0.0};
    double _compute[2] = {0.0, 0.0};
};

/**
 * One linearized rebalance step (Eq. 10): assuming T_side(alpha) is
 * proportional to the side's ratio, returns the alpha that equalizes
 * the two sides' totals, linearized around @p alpha0. Result is
 * clamped to (0, 1).
 */
double solveRatioLinear(const RatioCostTables &tables, double alpha0);

/** Convenience wrapper building the tables from @p model (linearized
 *  around the model's current ratio). */
double solveRatioLinear(const CondensedGraph &graph,
                        const std::vector<LayerDims> &dims,
                        const PairCostModel &model,
                        const std::vector<PartitionType> &types);

/**
 * Exact balance: bisection for the alpha equalizing T_L(alpha) and
 * T_R(alpha) over the precomputed coefficient tables. When a vector
 * backend with at least three lanes is active, the 80 bisection steps
 * run two at a time as a batched multisection — each round evaluates
 * the midpoint and both depth-2 midpoints in one batched term pass —
 * with the candidate expressions formed exactly as sequential
 * bisection would form them. On narrower backends (the scalar
 * fallback, where the speculative third candidate is 1.5x extra work
 * instead of a spare lane) it runs the sequential per-alpha loop
 * instead. Either way the (lo, hi) trajectory, the returned alpha and
 * the bracket are bit-identical with solveRatioExactPerAlpha.
 */
double solveRatioExact(const RatioCostTables &tables);

/** As above, additionally reporting the final bisection interval into
 *  @p bracket when non-null (for plan certificates). */
double solveRatioExact(const RatioCostTables &tables,
                       RatioBracket *bracket);

/**
 * The pre-batching reference: strictly sequential bisection, one
 * two-sided term pass per step. Kept as the bit-identity oracle for
 * solveRatioExact and as the per-alpha baseline arm of
 * bench_dp_kernel's sweep comparison.
 */
double solveRatioExactPerAlpha(const RatioCostTables &tables,
                               RatioBracket *bracket = nullptr);

/** Convenience wrapper building the tables from @p model (whose own
 *  ratio does not influence the result). */
double solveRatioExact(const CondensedGraph &graph,
                       const std::vector<LayerDims> &dims,
                       const PairCostModel &model,
                       const std::vector<PartitionType> &types);

} // namespace accpar::core

#endif // ACCPAR_CORE_RATIO_SOLVER_H
