/**
 * @file
 * Series-parallel decomposition of the condensed graph.
 *
 * The multi-path partitioning of paper §5.2 enumerates the states of the
 * layer before a fork and the layer after the join, and solves each path
 * independently between the two states. This module turns the condensed
 * DAG into the structure that search consumes: a Chain of Elements, where
 * an Element is either a single node or a parallel region (the paths
 * between a fork and its join, with the join as the element's
 * state-carrying node). Identity shortcuts appear as empty paths.
 */

#ifndef ACCPAR_CORE_SEGMENT_H
#define ACCPAR_CORE_SEGMENT_H

#include <vector>

#include "core/condensed_graph.h"

namespace accpar::core {

struct Element;

/** A sequence of elements; inside a parallel region, possibly empty. */
struct Chain
{
    std::vector<Element> elements;
};

/**
 * One step of a chain. The element's partition state is the state of
 * @c node. For a parallel element, @c node is the join and @c paths hold
 * the (possibly empty) branches between the fork (the previous element's
 * node) and the join.
 */
struct Element
{
    CNodeId node = -1;
    std::vector<Chain> paths;

    bool isParallel() const { return !paths.empty(); }
};

/**
 * Decomposes @p graph into its series-parallel chain.
 *
 * Supports arbitrary nesting with distinct join nodes; throws ConfigError
 * for graphs where a nested region's join coincides with its parent's
 * (not series-parallel in the two-terminal sense, and not produced by any
 * model in the zoo).
 */
Chain decomposeSeriesParallel(const CondensedGraph &graph);

/** Immediate post-dominator of every node (sink maps to itself). */
std::vector<CNodeId> immediatePostDominators(const CondensedGraph &graph);

/** All node ids covered by @p chain, recursively, in visit order. */
std::vector<CNodeId> collectChainNodes(const Chain &chain);

} // namespace accpar::core

#endif // ACCPAR_CORE_SEGMENT_H
