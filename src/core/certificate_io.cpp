#include "core/certificate_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/plan_io.h"
#include "util/error.h"

namespace accpar::core {

namespace {

constexpr const char *kFormat = "accpar-cert-v1";

bool
typeAllowed(const std::vector<PartitionType> &allowed, int index)
{
    return std::find(allowed.begin(), allowed.end(),
                     partitionTypeFromIndex(index)) != allowed.end();
}

std::optional<PartitionType>
typeFromTag(const std::string &tag)
{
    for (PartitionType t : kAllPartitionTypes)
        if (tag == partitionTypeTag(t))
            return t;
    return std::nullopt;
}

const char *
objectiveTag(ObjectiveKind objective)
{
    return objective == ObjectiveKind::Time ? "time" : "comm-amount";
}

const char *
reduceTag(PairReduce reduce)
{
    return reduce == PairReduce::Max ? "max" : "sum";
}

std::string
nodeLocation(hw::NodeId id)
{
    return "certificate entry for hierarchy node " + std::to_string(id);
}

/** A Bellman/table cell: null when it carries no information. */
util::Json
cellJson(double value, bool meaningful)
{
    if (!meaningful || value == std::numeric_limits<double>::infinity())
        return util::Json();
    return util::Json(value);
}

util::Json
nodeCertificateToJson(hw::NodeId id, const NodeCertificate &nc)
{
    util::Json node;
    node["node"] = static_cast<std::int64_t>(id);
    node["alpha"] = nc.alpha;
    util::Json bracket;
    bracket.push(nc.alphaLo);
    bracket.push(nc.alphaHi);
    node["alphaBracket"] = std::move(bracket);
    util::Json history;
    for (double a : nc.alphaHistory)
        history.push(a);
    node["alphaHistory"] = std::move(history);
    node["cost"] = nc.cost;

    util::Json types;
    for (PartitionType t : nc.types)
        types.push(partitionTypeTag(t));
    node["types"] = std::move(types);

    util::Json allowed{util::Json::Array{}};
    for (const std::vector<PartitionType> &set : nc.allowed) {
        util::Json entry{util::Json::Array{}};
        for (PartitionType t : set)
            entry.push(partitionTypeTag(t));
        allowed.push(std::move(entry));
    }
    node["allowed"] = std::move(allowed);

    util::Json table{util::Json::Array{}};
    for (std::size_t v = 0; v < nc.nodeTable.size(); ++v) {
        util::Json row;
        for (int t = 0; t < kPartitionTypeCount; ++t)
            row.push(cellJson(nc.nodeTable[v][static_cast<size_t>(t)],
                              typeAllowed(nc.allowed[v], t)));
        table.push(std::move(row));
    }
    node["nodeTable"] = std::move(table);

    util::Json edges{util::Json::Array{}};
    for (const CertificateEdge &edge : nc.edges) {
        util::Json e;
        e["from"] = static_cast<std::int64_t>(edge.from);
        e["to"] = static_cast<std::int64_t>(edge.to);
        e["boundary"] = edge.boundary;
        util::Json cost{util::Json::Array{}};
        for (int from = 0; from < kPartitionTypeCount; ++from) {
            util::Json row;
            for (int to = 0; to < kPartitionTypeCount; ++to) {
                const std::size_t fu = static_cast<std::size_t>(edge.from);
                const std::size_t tv = static_cast<std::size_t>(edge.to);
                const bool ok = typeAllowed(nc.allowed[fu], from) &&
                                typeAllowed(nc.allowed[tv], to);
                row.push(cellJson(
                    edge.cost[static_cast<std::size_t>(from * 3 + to)],
                    ok));
            }
            cost.push(std::move(row));
        }
        e["cost"] = std::move(cost);
        edges.push(std::move(e));
    }
    node["edges"] = std::move(edges);

    util::Json dp;
    util::Json chain;
    for (CNodeId v : nc.chainNodes)
        chain.push(static_cast<std::int64_t>(v));
    dp["chain"] = std::move(chain);
    util::Json cost{util::Json::Array{}};
    util::Json parent{util::Json::Array{}};
    for (std::size_t e = 0; e < nc.dpCost.size(); ++e) {
        util::Json cost_row;
        util::Json parent_row;
        for (int t = 0; t < kPartitionTypeCount; ++t) {
            cost_row.push(
                cellJson(nc.dpCost[e][static_cast<std::size_t>(t)],
                         true));
            parent_row.push(static_cast<std::int64_t>(
                nc.dpParent[e][static_cast<std::size_t>(t)]));
        }
        cost.push(std::move(cost_row));
        parent.push(std::move(parent_row));
    }
    dp["cost"] = std::move(cost);
    dp["parent"] = std::move(parent);
    dp["exitType"] = nc.exitType;
    node["dp"] = std::move(dp);
    return node;
}

} // namespace

util::Json
certificateToJson(const PlanCertificate &certificate,
                  const hw::Hierarchy &hierarchy)
{
    util::Json doc;
    doc["format"] = kFormat;
    doc["strategy"] = certificate.strategyName();
    doc["model"] = certificate.modelName();
    doc["hierarchySignature"] = hierarchySignature(hierarchy);

    util::Json names{util::Json::Array{}};
    for (const std::string &name : certificate.nodeNames())
        names.push(name);
    doc["layers"] = std::move(names);

    const CostModelConfig &cost = certificate.searchCost();
    util::Json search;
    search["objective"] = objectiveTag(cost.objective);
    search["reduce"] = reduceTag(cost.reduce);
    search["includeCompute"] = cost.includeCompute;
    search["bytesPerElement"] = cost.bytesPerElement;
    search["ratioPolicy"] = ratioPolicyName(certificate.ratioPolicy());
    doc["search"] = std::move(search);

    util::Json nodes{util::Json::Array{}};
    for (std::size_t i = 0; i < certificate.hierarchyNodeCount(); ++i) {
        const auto id = static_cast<hw::NodeId>(i);
        if (!certificate.hasNodeCertificate(id))
            continue;
        nodes.push(
            nodeCertificateToJson(id, certificate.nodeCertificate(id)));
    }
    doc["nodes"] = std::move(nodes);
    return doc;
}

namespace {

/** Parses a cell emitted by cellJson: null maps back to @p fallback. */
std::optional<double>
parseCell(const util::Json &cell, double fallback)
{
    if (cell.kind() == util::Json::Kind::Null)
        return fallback;
    if (cell.kind() != util::Json::Kind::Number)
        return std::nullopt;
    return cell.asNumber();
}

/** Parses one type-tag array into @p out; false on any bad tag. */
bool
parseTypeList(const util::Json &json,
              std::vector<PartitionType> &out)
{
    if (json.kind() != util::Json::Kind::Array)
        return false;
    for (const util::Json &t : json.asArray()) {
        if (t.kind() != util::Json::Kind::String)
            return false;
        const std::optional<PartitionType> type =
            typeFromTag(t.asString());
        if (!type)
            return false;
        out.push_back(*type);
    }
    return true;
}

/** Parses one node entry; reports ACIO03/ACIO04 into @p sink. */
std::optional<NodeCertificate>
parseNodeCertificate(const util::Json &node, hw::NodeId id,
                     std::size_t layer_count,
                     analysis::DiagnosticSink &sink)
{
    NodeCertificate nc;
    for (const char *key : {"alpha", "cost"}) {
        if (!node.contains(key) ||
            node.at(key).kind() != util::Json::Kind::Number) {
            sink.error("ACIO03", nodeLocation(id),
                       std::string("missing or non-numeric '") + key +
                           "' field");
            return std::nullopt;
        }
    }
    nc.alpha = node.at("alpha").asNumber();
    nc.cost = node.at("cost").asNumber();

    if (!node.contains("alphaBracket") ||
        node.at("alphaBracket").kind() != util::Json::Kind::Array ||
        node.at("alphaBracket").asArray().size() != 2 ||
        node.at("alphaBracket").asArray()[0].kind() !=
            util::Json::Kind::Number ||
        node.at("alphaBracket").asArray()[1].kind() !=
            util::Json::Kind::Number) {
        sink.error("ACIO03", nodeLocation(id),
                   "'alphaBracket' must be the [lo, hi] number pair of "
                   "the ratio solver's final bisection interval");
        return std::nullopt;
    }
    nc.alphaLo = node.at("alphaBracket").asArray()[0].asNumber();
    nc.alphaHi = node.at("alphaBracket").asArray()[1].asNumber();

    if (!node.contains("alphaHistory") ||
        node.at("alphaHistory").kind() != util::Json::Kind::Array) {
        sink.error("ACIO03", nodeLocation(id),
                   "missing 'alphaHistory' array");
        return std::nullopt;
    }
    for (const util::Json &a : node.at("alphaHistory").asArray()) {
        if (a.kind() != util::Json::Kind::Number) {
            sink.error("ACIO03", nodeLocation(id),
                       "'alphaHistory' entries must be numbers");
            return std::nullopt;
        }
        nc.alphaHistory.push_back(a.asNumber());
    }

    if (!node.contains("types") ||
        !parseTypeList(node.at("types"), nc.types) ||
        nc.types.size() != layer_count) {
        sink.error("ACIO04", nodeLocation(id),
                   "'types' must list one legal tag (\"I\", \"II\" or "
                   "\"III\") per layer");
        return std::nullopt;
    }

    if (!node.contains("allowed") ||
        node.at("allowed").kind() != util::Json::Kind::Array ||
        node.at("allowed").asArray().size() != layer_count) {
        sink.error("ACIO03", nodeLocation(id),
                   "'allowed' must hold one type list per layer");
        return std::nullopt;
    }
    for (const util::Json &entry : node.at("allowed").asArray()) {
        std::vector<PartitionType> set;
        if (!parseTypeList(entry, set)) {
            sink.error("ACIO04", nodeLocation(id),
                       "'allowed' entries must be arrays of legal "
                       "type tags");
            return std::nullopt;
        }
        nc.allowed.push_back(std::move(set));
    }

    if (!node.contains("nodeTable") ||
        node.at("nodeTable").kind() != util::Json::Kind::Array ||
        node.at("nodeTable").asArray().size() != layer_count) {
        sink.error("ACIO03", nodeLocation(id),
                   "'nodeTable' must hold one 3-cell row per layer");
        return std::nullopt;
    }
    for (const util::Json &row : node.at("nodeTable").asArray()) {
        if (row.kind() != util::Json::Kind::Array ||
            row.asArray().size() != kPartitionTypeCount) {
            sink.error("ACIO03", nodeLocation(id),
                       "'nodeTable' rows must have exactly 3 cells");
            return std::nullopt;
        }
        std::array<double, 3> cells{};
        for (int t = 0; t < kPartitionTypeCount; ++t) {
            const std::optional<double> cell = parseCell(
                row.asArray()[static_cast<std::size_t>(t)], 0.0);
            if (!cell) {
                sink.error("ACIO03", nodeLocation(id),
                           "'nodeTable' cells must be numbers or null");
                return std::nullopt;
            }
            cells[static_cast<std::size_t>(t)] = *cell;
        }
        nc.nodeTable.push_back(cells);
    }

    if (!node.contains("edges") ||
        node.at("edges").kind() != util::Json::Kind::Array) {
        sink.error("ACIO03", nodeLocation(id),
                   "missing 'edges' array");
        return std::nullopt;
    }
    for (const util::Json &e : node.at("edges").asArray()) {
        CertificateEdge edge;
        if (e.kind() != util::Json::Kind::Object ||
            !e.contains("from") ||
            e.at("from").kind() != util::Json::Kind::Number ||
            !e.contains("to") ||
            e.at("to").kind() != util::Json::Kind::Number ||
            !e.contains("boundary") ||
            e.at("boundary").kind() != util::Json::Kind::Number ||
            !e.contains("cost") ||
            e.at("cost").kind() != util::Json::Kind::Array ||
            e.at("cost").asArray().size() != kPartitionTypeCount) {
            sink.error("ACIO03", nodeLocation(id),
                       "'edges' entries need from/to/boundary and a "
                       "3x3 'cost' table");
            return std::nullopt;
        }
        edge.from = static_cast<CNodeId>(e.at("from").asInt());
        edge.to = static_cast<CNodeId>(e.at("to").asInt());
        edge.boundary = e.at("boundary").asNumber();
        if (edge.from < 0 ||
            static_cast<std::size_t>(edge.from) >= layer_count ||
            edge.to < 0 ||
            static_cast<std::size_t>(edge.to) >= layer_count) {
            sink.error("ACIO05", nodeLocation(id),
                       "edge endpoint is not a condensed-node id");
            return std::nullopt;
        }
        for (int from = 0; from < kPartitionTypeCount; ++from) {
            const util::Json &row =
                e.at("cost").asArray()[static_cast<std::size_t>(from)];
            if (row.kind() != util::Json::Kind::Array ||
                row.asArray().size() != kPartitionTypeCount) {
                sink.error("ACIO03", nodeLocation(id),
                           "edge 'cost' rows must have exactly 3 "
                           "cells");
                return std::nullopt;
            }
            for (int to = 0; to < kPartitionTypeCount; ++to) {
                const std::optional<double> cell = parseCell(
                    row.asArray()[static_cast<std::size_t>(to)], 0.0);
                if (!cell) {
                    sink.error("ACIO03", nodeLocation(id),
                               "edge 'cost' cells must be numbers or "
                               "null");
                    return std::nullopt;
                }
                edge.cost[static_cast<std::size_t>(from * 3 + to)] =
                    *cell;
            }
        }
        nc.edges.push_back(edge);
    }

    if (!node.contains("dp") ||
        node.at("dp").kind() != util::Json::Kind::Object) {
        sink.error("ACIO03", nodeLocation(id), "missing 'dp' object");
        return std::nullopt;
    }
    const util::Json &dp = node.at("dp");
    if (!dp.contains("chain") ||
        dp.at("chain").kind() != util::Json::Kind::Array ||
        !dp.contains("cost") ||
        dp.at("cost").kind() != util::Json::Kind::Array ||
        !dp.contains("parent") ||
        dp.at("parent").kind() != util::Json::Kind::Array ||
        !dp.contains("exitType") ||
        dp.at("exitType").kind() != util::Json::Kind::Number) {
        sink.error("ACIO03", nodeLocation(id),
                   "'dp' needs chain/cost/parent arrays and an "
                   "'exitType'");
        return std::nullopt;
    }
    for (const util::Json &v : dp.at("chain").asArray()) {
        if (v.kind() != util::Json::Kind::Number) {
            sink.error("ACIO03", nodeLocation(id),
                       "'dp.chain' entries must be node ids");
            return std::nullopt;
        }
        nc.chainNodes.push_back(static_cast<CNodeId>(v.asInt()));
    }
    const std::size_t chain_len = nc.chainNodes.size();
    if (dp.at("cost").asArray().size() != chain_len ||
        dp.at("parent").asArray().size() != chain_len) {
        sink.error("ACIO03", nodeLocation(id),
                   "'dp.cost' and 'dp.parent' must have one row per "
                   "chain element");
        return std::nullopt;
    }
    for (std::size_t e = 0; e < chain_len; ++e) {
        const util::Json &cost_row = dp.at("cost").asArray()[e];
        const util::Json &parent_row = dp.at("parent").asArray()[e];
        if (cost_row.kind() != util::Json::Kind::Array ||
            cost_row.asArray().size() != kPartitionTypeCount ||
            parent_row.kind() != util::Json::Kind::Array ||
            parent_row.asArray().size() != kPartitionTypeCount) {
            sink.error("ACIO03", nodeLocation(id),
                       "'dp' rows must have exactly 3 cells");
            return std::nullopt;
        }
        std::array<double, 3> cost_cells{};
        std::array<std::int8_t, 3> parent_cells{};
        for (int t = 0; t < kPartitionTypeCount; ++t) {
            const std::optional<double> cell = parseCell(
                cost_row.asArray()[static_cast<std::size_t>(t)],
                std::numeric_limits<double>::infinity());
            if (!cell ||
                parent_row.asArray()[static_cast<std::size_t>(t)]
                        .kind() != util::Json::Kind::Number) {
                sink.error("ACIO03", nodeLocation(id),
                           "'dp' cost cells must be numbers or null "
                           "and parent cells type indices");
                return std::nullopt;
            }
            cost_cells[static_cast<std::size_t>(t)] = *cell;
            parent_cells[static_cast<std::size_t>(t)] =
                static_cast<std::int8_t>(
                    parent_row.asArray()[static_cast<std::size_t>(t)]
                        .asInt());
        }
        nc.dpCost.push_back(cost_cells);
        nc.dpParent.push_back(parent_cells);
    }
    nc.exitType = static_cast<int>(dp.at("exitType").asInt());
    return nc;
}

} // namespace

std::optional<PlanCertificate>
certificateFromJson(const util::Json &json,
                    const hw::Hierarchy &hierarchy,
                    analysis::DiagnosticSink &sink)
{
    if (json.kind() != util::Json::Kind::Object ||
        !json.contains("format") ||
        json.at("format").kind() != util::Json::Kind::String ||
        json.at("format").asString() != kFormat) {
        sink.error("ACIO01", "certificate document",
                   "not an accpar certificate document (expected "
                   "\"format\": \"accpar-cert-v1\")",
                   "produce certificates with `accpar plan --cert` or "
                   "core::saveCertificate");
        return std::nullopt;
    }
    if (!json.contains("hierarchySignature") ||
        json.at("hierarchySignature").kind() !=
            util::Json::Kind::String ||
        json.at("hierarchySignature").asString() !=
            hierarchySignature(hierarchy)) {
        sink.error("ACIO02", "certificate document",
                   "certificate was produced for a different "
                   "accelerator hierarchy",
                   "audit against the array the plan was searched on");
        return std::nullopt;
    }
    for (const char *key : {"strategy", "model"}) {
        if (!json.contains(key) ||
            json.at(key).kind() != util::Json::Kind::String) {
            sink.error("ACIO03", "certificate document",
                       std::string("missing or non-string '") + key +
                           "' field");
            return std::nullopt;
        }
    }
    if (!json.contains("layers") ||
        json.at("layers").kind() != util::Json::Kind::Array ||
        !json.contains("nodes") ||
        json.at("nodes").kind() != util::Json::Kind::Array ||
        !json.contains("search") ||
        json.at("search").kind() != util::Json::Kind::Object) {
        sink.error("ACIO03", "certificate document",
                   "missing 'layers', 'nodes' or 'search'");
        return std::nullopt;
    }

    std::vector<std::string> names;
    for (const util::Json &n : json.at("layers").asArray()) {
        if (n.kind() != util::Json::Kind::String) {
            sink.error("ACIO03", "certificate document",
                       "'layers' entries must be layer-name strings");
            return std::nullopt;
        }
        names.push_back(n.asString());
    }

    const util::Json &search = json.at("search");
    CostModelConfig cost;
    RatioPolicy policy = RatioPolicy::PaperLinear;
    {
        bool ok =
            search.contains("objective") &&
            search.at("objective").kind() == util::Json::Kind::String &&
            search.contains("reduce") &&
            search.at("reduce").kind() == util::Json::Kind::String &&
            search.contains("includeCompute") &&
            search.at("includeCompute").kind() ==
                util::Json::Kind::Bool &&
            search.contains("bytesPerElement") &&
            search.at("bytesPerElement").kind() ==
                util::Json::Kind::Number &&
            search.contains("ratioPolicy") &&
            search.at("ratioPolicy").kind() == util::Json::Kind::String;
        if (ok) {
            const std::string &objective =
                search.at("objective").asString();
            const std::string &reduce = search.at("reduce").asString();
            const std::optional<RatioPolicy> parsed =
                ratioPolicyFromName(
                    search.at("ratioPolicy").asString());
            ok = (objective == "time" || objective == "comm-amount") &&
                 (reduce == "max" || reduce == "sum") &&
                 parsed.has_value();
            if (ok) {
                cost.objective = objective == "time"
                                     ? ObjectiveKind::Time
                                     : ObjectiveKind::CommAmount;
                cost.reduce = reduce == "max" ? PairReduce::Max
                                              : PairReduce::Sum;
                cost.includeCompute =
                    search.at("includeCompute").asBool();
                cost.bytesPerElement =
                    search.at("bytesPerElement").asNumber();
                policy = *parsed;
            }
        }
        if (!ok) {
            sink.error("ACIO03", "certificate document",
                       "'search' must record objective/reduce/"
                       "includeCompute/bytesPerElement/ratioPolicy");
            return std::nullopt;
        }
    }

    PlanCertificate certificate(json.at("strategy").asString(),
                                json.at("model").asString(),
                                hierarchy.nodeCount(), names, cost,
                                policy);

    const std::size_t errors_before = sink.errorCount();
    std::vector<bool> covered(hierarchy.nodeCount(), false);
    for (const util::Json &node : json.at("nodes").asArray()) {
        if (node.kind() != util::Json::Kind::Object ||
            !node.contains("node") ||
            node.at("node").kind() != util::Json::Kind::Number) {
            sink.error("ACIO03", "certificate document",
                       "every 'nodes' entry must be an object with a "
                       "numeric 'node' id");
            continue;
        }
        const auto id =
            static_cast<hw::NodeId>(node.at("node").asInt());
        if (id < 0 ||
            static_cast<std::size_t>(id) >= hierarchy.nodeCount()) {
            sink.error("ACIO05", nodeLocation(id),
                       "hierarchy node id is out of range (the array "
                       "has " +
                           std::to_string(hierarchy.nodeCount()) +
                           " nodes)");
            continue;
        }
        if (hierarchy.node(id).isLeaf()) {
            sink.error("ACIO05", nodeLocation(id),
                       "hierarchy node is a leaf; leaves carry no "
                       "decisions");
            continue;
        }
        if (covered[static_cast<std::size_t>(id)]) {
            sink.error("ACIO05", nodeLocation(id),
                       "duplicate entry for this hierarchy node");
            continue;
        }
        covered[static_cast<std::size_t>(id)] = true;
        std::optional<NodeCertificate> nc =
            parseNodeCertificate(node, id, names.size(), sink);
        if (nc)
            certificate.setNodeCertificate(id, *std::move(nc));
    }
    for (hw::NodeId id : hierarchy.internalNodes()) {
        if (!covered[static_cast<std::size_t>(id)])
            sink.error("ACIO03", nodeLocation(id),
                       "certificate document misses this hierarchy "
                       "node",
                       "every internal node needs one 'nodes' entry");
    }
    if (sink.errorCount() != errors_before)
        return std::nullopt;
    return certificate;
}

PlanCertificate
certificateFromJson(const util::Json &json,
                    const hw::Hierarchy &hierarchy)
{
    analysis::DiagnosticSink sink;
    std::optional<PlanCertificate> certificate =
        certificateFromJson(json, hierarchy, sink);
    if (!certificate) {
        sink.sort();
        throw util::ConfigError("invalid certificate document:\n" +
                                sink.renderText());
    }
    return *std::move(certificate);
}

void
saveCertificate(const PlanCertificate &certificate,
                const hw::Hierarchy &hierarchy, const std::string &path)
{
    std::ofstream out(path);
    ACCPAR_REQUIRE(out.is_open(), "cannot open " << path
                                                 << " for writing");
    out << certificateToJson(certificate, hierarchy).dump(2) << '\n';
}

std::optional<PlanCertificate>
loadCertificate(const std::string &path, const hw::Hierarchy &hierarchy,
                analysis::DiagnosticSink &sink)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        sink.error("ACIO01", path,
                   "cannot open certificate file for reading",
                   "check the path and permissions");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    util::Json doc;
    try {
        doc = util::Json::parse(text.str());
    } catch (const util::Error &e) {
        sink.error("ACIO01", path,
                   std::string("file is not valid JSON: ") + e.what());
        return std::nullopt;
    }
    return certificateFromJson(doc, hierarchy, sink);
}

PlanCertificate
loadCertificate(const std::string &path, const hw::Hierarchy &hierarchy)
{
    analysis::DiagnosticSink sink;
    std::optional<PlanCertificate> certificate =
        loadCertificate(path, hierarchy, sink);
    if (!certificate) {
        sink.sort();
        throw util::ConfigError("invalid certificate file " + path +
                                ":\n" + sink.renderText());
    }
    return *std::move(certificate);
}

std::string
certificateFingerprint(const util::Json &doc)
{
    const std::string text = doc.dump();
    std::uint64_t hash = 14695981039346656037ull;
    for (unsigned char byte : text) {
        hash ^= byte;
        hash *= 1099511628211ull;
    }
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

} // namespace accpar::core
