#include "core/dp_kernel.h"

#include <algorithm>
#include <limits>

#include "core/certificate.h"
#include "util/error.h"

namespace accpar::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

DpStructure::DpStructure(const CondensedGraph &graph, const Chain &chain)
    : _graph(graph)
{
    const std::size_t n = graph.size();
    _edgeStart.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        _edgeStart[v] = static_cast<std::int32_t>(_edges.size());
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        for (CNodeId u : node.preds) {
            Edge edge;
            edge.from = u;
            edge.to = static_cast<CNodeId>(v);
            _edges.push_back(edge);
        }
    }
    _edgeStart[n] = static_cast<std::int32_t>(_edges.size());

    _root = compileChain(chain, kNoEntryNode);

    // The chain must cover every condensed node, or backtracking would
    // leave nodes unassigned (the unflattened DP asserted this on every
    // solve; the coverage is a property of the compiled structure, so
    // checking once here is equivalent).
    std::vector<bool> covered(n, false);
    for (CNodeId v : collectChainNodes(chain))
        covered[v] = true;
    for (std::size_t v = 0; v < n; ++v)
        ACCPAR_ASSERT(covered[v],
                      "DP left node "
                          << graph.node(static_cast<CNodeId>(v)).name
                          << " unassigned");
}

DpStructure::~DpStructure() = default;

std::int32_t
DpStructure::edgeIndex(CNodeId from, CNodeId to) const
{
    for (std::int32_t e = _edgeStart[to]; e < _edgeStart[to + 1]; ++e) {
        if (_edges[e].from == from)
            return e;
    }
    throw util::InternalError("no condensed edge " +
                              std::to_string(from) + " -> " +
                              std::to_string(to));
}

std::unique_ptr<DpStructure::CompiledChain>
DpStructure::compileChain(const Chain &chain, CNodeId fork)
{
    ACCPAR_ASSERT(!chain.elements.empty(), "empty chain in DP");
    auto out = std::make_unique<CompiledChain>();
    out->elems.reserve(chain.elements.size());
    CNodeId prev = fork;
    bool first = true;
    for (const Element &element : chain.elements) {
        CompiledElem ce;
        ce.node = element.node;
        if (first) {
            ACCPAR_ASSERT(!element.isParallel(),
                          "a chain cannot start with a parallel element");
            ce.edgePrev = fork == kNoEntryNode
                              ? -1
                              : edgeIndex(fork, element.node);
            first = false;
        } else if (element.isParallel()) {
            ce.paths.reserve(element.paths.size());
            for (const Chain &path : element.paths) {
                CompiledPath cp;
                if (path.elements.empty()) {
                    // Identity shortcut: the fork tensor converts
                    // straight into the join's partitioning.
                    cp.directEdge = edgeIndex(prev, element.node);
                } else {
                    cp.chain = compileChain(path, prev);
                    cp.lastNode = path.elements.back().node;
                    cp.exitEdge = edgeIndex(cp.lastNode, element.node);
                }
                ce.paths.push_back(std::move(cp));
            }
        } else {
            ce.edgePrev = edgeIndex(prev, element.node);
        }
        out->elems.push_back(std::move(ce));
        prev = element.node;
    }
    return out;
}

DpKernel::DpKernel(const CondensedGraph &graph, const Chain &chain,
                   const std::vector<LayerDims> &dims)
    : DpKernel(std::make_unique<DpStructure>(graph, chain), dims)
{
}

DpKernel::DpKernel(std::unique_ptr<DpStructure> owned,
                   const std::vector<LayerDims> &dims)
    : _owned(std::move(owned)), _structure(*_owned), _dims(dims)
{
    init();
}

DpKernel::DpKernel(const DpStructure &structure,
                   const std::vector<LayerDims> &dims)
    : _structure(structure), _dims(dims)
{
    init();
}

void
DpKernel::init()
{
    const CondensedGraph &graph = _structure._graph;
    ACCPAR_REQUIRE(_dims.size() == graph.size(),
                   "dims size mismatch: " << _dims.size() << " vs "
                                          << graph.size());

    const std::vector<Edge> &edges = _structure._edges;
    _boundary.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
        _boundary[e] = std::min(_dims[edges[e].from].sizeOutput(),
                                _dims[edges[e].to].sizeInput());

    _rootState = makeState(*_structure._root);
    _nodeTable.assign(graph.size() * 3, 0.0);
    // One trailing pad element keeps the batch kernel's four-wide
    // column loads of the last edge in bounds.
    _edgeTableT.assign(edges.size() * 9 + 1, 0.0);
}

DpKernel::~DpKernel() = default;

std::unique_ptr<DpKernel::ChainState>
DpKernel::makeState(const CompiledChain &chain) const
{
    auto state = std::make_unique<ChainState>();
    const std::size_t m = chain.elems.size();
    state->cost.assign(m * 3, kInf);
    state->parent.assign(m * 3, -1);
    state->pars.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        const CompiledElem &elem = chain.elems[i];
        if (elem.paths.empty())
            continue;
        auto par = std::make_unique<ChainState::ParState>();
        par->paths.resize(elem.paths.size());
        for (std::size_t p = 0; p < elem.paths.size(); ++p) {
            if (!elem.paths[p].chain)
                continue;
            for (int k = 0; k < 3; ++k)
                par->paths[p][k] = makeState(*elem.paths[p].chain);
        }
        state->pars[i] = std::move(par);
    }
    return state;
}

void
DpKernel::resetState(const CompiledChain &chain, ChainState &state) const
{
    std::fill(state.cost.begin(), state.cost.end(), kInf);
    std::fill(state.parent.begin(), state.parent.end(),
              static_cast<std::int8_t>(-1));
    for (std::size_t i = 0; i < chain.elems.size(); ++i) {
        if (state.pars[i])
            state.pars[i]->solved = {false, false, false};
    }
    // Path sub-states are reset lazily, right before their sub-solve.
}

/**
 * Transition cost of a parallel element when the fork (state index
 * @p tti) feeds the join (state index @p t): the per-path minima of
 * Figure 4, summed over paths. Each non-identity path is solved once
 * per entry state and reused for all three join states.
 */
double
DpKernel::parallelTransition(const CompiledElem &elem,
                             ChainState::ParState &par, int tti, int t)
{
    if (!par.solved[tti]) {
        for (std::size_t p = 0; p < elem.paths.size(); ++p) {
            const CompiledPath &path = elem.paths[p];
            if (!path.chain)
                continue;
            ChainState &sub = *par.paths[p][tti];
            resetState(*path.chain, sub);
            solveChain(*path.chain, sub, tti);
        }
        par.solved[tti] = true;
    }

    double total = 0.0;
    for (std::size_t p = 0; p < elem.paths.size(); ++p) {
        const CompiledPath &path = elem.paths[p];
        if (!path.chain) {
            total += _edgeTableT[path.directEdge * 9 + t * 3 + tti];
            continue;
        }
        const ChainState &sub = *par.paths[p][tti];
        const int best_s = bestPathExit(path, sub, t);
        const std::size_t last = path.chain->elems.size() - 1;
        total += sub.cost[last * 3 + best_s] +
                 _edgeTableT[path.exitEdge * 9 + t * 3 + best_s];
    }
    return total;
}

/** Argmin exit state of one solved path feeding join state @p t. */
int
DpKernel::bestPathExit(const CompiledPath &path, const ChainState &state,
                       int t) const
{
    const std::size_t last = path.chain->elems.size() - 1;
    const double *cost = state.cost.data() + last * 3;
    double best = kInf;
    int best_s = -1;
    for (PartitionType s : (*_allowed)[path.lastNode]) {
        const int si = partitionTypeIndex(s);
        if (cost[si] == kInf)
            continue;
        const double cand =
            cost[si] + _edgeTableT[path.exitEdge * 9 + t * 3 + si];
        if (cand < best) {
            best = cand;
            best_s = si;
        }
    }
    ACCPAR_ASSERT(best_s >= 0, "parallel path has no feasible state");
    return best_s;
}

/**
 * The flat DP over one compiled chain. @p entry_ti < 0 means the chain
 * starts the model (Eq. 9's c(L_0, t) = 0 initialization); otherwise
 * the first element pays the conversion from the fork's entry state.
 */
void
DpKernel::solveChain(const CompiledChain &chain, ChainState &state,
                     int entry_ti)
{
    const TypeRestrictions &allowed = *_allowed;
    const std::vector<CompiledElem> &elems = chain.elems;
    {
        const CompiledElem &elem = elems[0];
        for (PartitionType t : allowed[elem.node]) {
            const int ti = partitionTypeIndex(t);
            double cost = _nodeTable[elem.node * 3 + ti];
            if (entry_ti >= 0)
                cost +=
                    _edgeTableT[elem.edgePrev * 9 + ti * 3 + entry_ti];
            state.cost[ti] = cost;
        }
    }

    for (std::size_t i = 1; i < elems.size(); ++i) {
        const CompiledElem &elem = elems[i];
        const CompiledElem &prev = elems[i - 1];
        const double *prev_cost = state.cost.data() + (i - 1) * 3;
        double *cur_cost = state.cost.data() + i * 3;
        std::int8_t *cur_parent = state.parent.data() + i * 3;
        ChainState::ParState *par =
            elem.paths.empty() ? nullptr : state.pars[i].get();

        if (!par) {
            // Non-parallel element: all nine (target, source)
            // candidates in one batched pass over the to-major 3x3
            // transition block. The kernel computes the exact scalar
            // expression (prev + trans) + node per lane; cells the
            // reduction below never reads (disallowed types, infinite
            // predecessors) are computed into the scratch but
            // discarded. The reduction keeps the scalar allowed-type
            // iteration order and strict-< first-wins tie-break.
            double cand[12];
            _ops->candidates9(prev_cost,
                              _edgeTableT.data() + elem.edgePrev * 9,
                              _nodeTable.data() + elem.node * 3, cand);
            for (PartitionType t : allowed[elem.node]) {
                const int ti = partitionTypeIndex(t);
                double best = kInf;
                int best_tt = -1;
                for (PartitionType tt : allowed[prev.node]) {
                    const int tti = partitionTypeIndex(tt);
                    if (prev_cost[tti] == kInf)
                        continue;
                    const double c = cand[ti * 3 + tti];
                    if (c < best) {
                        best = c;
                        best_tt = tti;
                    }
                }
                if (best_tt < 0)
                    continue;
                cur_cost[ti] = best;
                cur_parent[ti] = static_cast<std::int8_t>(best_tt);
            }
            continue;
        }

        for (PartitionType t : allowed[elem.node]) {
            const int ti = partitionTypeIndex(t);
            const double node_cost = _nodeTable[elem.node * 3 + ti];
            double best = kInf;
            int best_tt = -1;
            for (PartitionType tt : allowed[prev.node]) {
                const int tti = partitionTypeIndex(tt);
                if (prev_cost[tti] == kInf)
                    continue;
                const double trans =
                    parallelTransition(elem, *par, tti, ti);
                const double cand = prev_cost[tti] + trans + node_cost;
                if (cand < best) {
                    best = cand;
                    best_tt = tti;
                }
            }
            if (best_tt < 0)
                continue;
            cur_cost[ti] = best;
            cur_parent[ti] = static_cast<std::int8_t>(best_tt);
        }
    }
}

/**
 * One reconstruction pass over the parent pointers. The per-path exit
 * states of parallel elements are re-derived from the memoized path
 * states with the same argmin the forward pass used, so the recovered
 * assignment is exactly the one the costs were computed from.
 */
void
DpKernel::backtrack(const CompiledChain &chain, const ChainState &state,
                    int exit_ti, std::vector<PartitionType> &types) const
{
    int ti = exit_ti;
    for (std::size_t i = chain.elems.size(); i-- > 0;) {
        const CompiledElem &elem = chain.elems[i];
        types[elem.node] = partitionTypeFromIndex(ti);
        const int parent_ti = state.parent[i * 3 + ti];
        if (!elem.paths.empty()) {
            const ChainState::ParState &par = *state.pars[i];
            for (std::size_t p = 0; p < elem.paths.size(); ++p) {
                const CompiledPath &path = elem.paths[p];
                if (!path.chain)
                    continue;
                const ChainState &sub = *par.paths[p][parent_ti];
                const int s = bestPathExit(path, sub, ti);
                backtrack(*path.chain, sub, s, types);
            }
        }
        ti = parent_ti;
    }
}

ChainDpResult
DpKernel::solve(const PairCostModel &model,
                const TypeRestrictions &allowed)
{
    const CondensedGraph &graph = _structure._graph;
    ACCPAR_REQUIRE(allowed.size() == graph.size(),
                   "type restriction size mismatch");
    _model = &model;
    _allowed = &allowed;
    _ops = &activeBatchKernelOps();

    // Step 1: dense cost tables, restricted to the allowed types (the
    // DP never reads a disallowed entry). Same model entry points and
    // arguments as the unflattened path, so memoized or not the values
    // are bit-identical.
    const std::size_t n = graph.size();
    for (std::size_t v = 0; v < n; ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        ACCPAR_ASSERT(!allowed[v].empty(),
                      "node " << node.name << " has no allowed types");
        for (PartitionType t : allowed[v]) {
            _nodeTable[v * 3 + partitionTypeIndex(t)] = model.nodeCost(
                static_cast<int>(v), _dims[v], node.junction, t);
        }
    }
    const std::vector<Edge> &edges = _structure._edges;
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const Edge &edge = edges[e];
        for (PartitionType from : allowed[edge.from]) {
            const int fi = partitionTypeIndex(from);
            for (PartitionType to : allowed[edge.to]) {
                _edgeTableT[e * 9 + partitionTypeIndex(to) * 3 + fi] =
                    model.transitionCost(edge.from, from, to,
                                         _boundary[e]);
            }
        }
    }

    // Step 2: the flat DP.
    resetState(*_structure._root, *_rootState);
    solveChain(*_structure._root, *_rootState, -1);

    const std::size_t m = _structure._root->elems.size();
    const CNodeId last = _structure._root->elems.back().node;
    const double *exit_cost = _rootState->cost.data() + (m - 1) * 3;
    double best = kInf;
    int best_t = -1;
    for (PartitionType t : allowed[last]) {
        const int ti = partitionTypeIndex(t);
        if (exit_cost[ti] < best) {
            best = exit_cost[ti];
            best_t = ti;
        }
    }
    ACCPAR_ASSERT(best_t >= 0, "DP found no feasible assignment");

    // Step 3: one backtracking pass.
    ChainDpResult result;
    result.cost = best;
    result.types.assign(n, PartitionType::TypeI);
    backtrack(*_structure._root, *_rootState, best_t, result.types);
    return result;
}

void
DpKernel::extractCertificate(const TypeRestrictions &allowed,
                             NodeCertificate &cert) const
{
    const CondensedGraph &graph = _structure._graph;
    ACCPAR_REQUIRE(allowed.size() == graph.size(),
                   "type restriction size mismatch");
    const std::size_t n = graph.size();
    cert.allowed = allowed;

    cert.nodeTable.assign(n, {0.0, 0.0, 0.0});
    for (std::size_t v = 0; v < n; ++v) {
        for (PartitionType t : allowed[v]) {
            const auto ti =
                static_cast<std::size_t>(partitionTypeIndex(t));
            cert.nodeTable[v][ti] = _nodeTable[v * 3 + ti];
        }
    }

    const std::vector<Edge> &edges = _structure._edges;
    cert.edges.clear();
    cert.edges.reserve(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const Edge &edge = edges[e];
        CertificateEdge ce;
        ce.from = edge.from;
        ce.to = edge.to;
        ce.boundary = _boundary[e];
        for (PartitionType from : allowed[edge.from]) {
            const int fi = partitionTypeIndex(from);
            for (PartitionType to : allowed[edge.to]) {
                const int ti = partitionTypeIndex(to);
                ce.cost[static_cast<std::size_t>(fi * 3 + ti)] =
                    _edgeTableT[e * 9 + static_cast<std::size_t>(ti) * 3 +
                                static_cast<std::size_t>(fi)];
            }
        }
        cert.edges.push_back(ce);
    }

    const std::vector<CompiledElem> &elems = _structure._root->elems;
    const std::size_t m = elems.size();
    cert.chainNodes.clear();
    cert.chainNodes.reserve(m);
    cert.dpCost.assign(m, {kInf, kInf, kInf});
    cert.dpParent.assign(m, {-1, -1, -1});
    for (std::size_t i = 0; i < m; ++i) {
        cert.chainNodes.push_back(elems[i].node);
        for (std::size_t t = 0; t < 3; ++t) {
            cert.dpCost[i][t] = _rootState->cost[i * 3 + t];
            cert.dpParent[i][t] = _rootState->parent[i * 3 + t];
        }
    }

    // Recompute the exit argmin exactly as solve() chose it.
    const CNodeId last = elems.back().node;
    const double *exit_cost = _rootState->cost.data() + (m - 1) * 3;
    double best = kInf;
    int best_t = -1;
    for (PartitionType t : allowed[last]) {
        const int ti = partitionTypeIndex(t);
        if (exit_cost[ti] < best) {
            best = exit_cost[ti];
            best_t = ti;
        }
    }
    cert.exitType = best_t;
}

double
DpKernel::evaluate(const PairCostModel &model,
                   const std::vector<PartitionType> &types) const
{
    const CondensedGraph &graph = _structure._graph;
    ACCPAR_REQUIRE(types.size() == graph.size(),
                   "assignment size mismatch");
    const std::vector<Edge> &edges = _structure._edges;
    const std::vector<std::int32_t> &edgeStart = _structure._edgeStart;
    double total = 0.0;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const CondensedNode &node = graph.node(static_cast<CNodeId>(v));
        total += model.nodeCost(static_cast<int>(v), _dims[v],
                                node.junction, types[v]);
        for (std::int32_t e = edgeStart[v]; e < edgeStart[v + 1]; ++e) {
            total += model.transitionCost(edges[e].from,
                                          types[edges[e].from], types[v],
                                          _boundary[e]);
        }
    }
    return total;
}

} // namespace accpar::core
