#include "core/plan_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace accpar::core {

double
PlanDiff::agreement() const
{
    if (decisions == 0)
        return 1.0;
    return 1.0 - static_cast<double>(typeDisagreements) /
                     static_cast<double>(decisions);
}

PlanDiff
diffPlans(const PartitionPlan &left, const PartitionPlan &right,
          const hw::Hierarchy &hierarchy)
{
    ACCPAR_REQUIRE(left.nodeNames() == right.nodeNames(),
                   "plans describe different models ("
                       << left.modelName() << " vs "
                       << right.modelName() << ")");

    PlanDiff diff;
    double alpha_delta_sum = 0.0;
    std::size_t internal_nodes = 0;

    for (hw::NodeId id : hierarchy.internalNodes()) {
        const NodePlan &l = left.nodePlan(id);
        const NodePlan &r = right.nodePlan(id);
        ++internal_nodes;

        const double delta = std::abs(l.alpha - r.alpha);
        diff.maxAlphaDelta = std::max(diff.maxAlphaDelta, delta);
        alpha_delta_sum += delta;

        for (std::size_t v = 0; v < l.types.size(); ++v) {
            ++diff.decisions;
            if (l.types[v] == r.types[v])
                continue;
            ++diff.typeDisagreements;
            diff.disagreements.push_back(
                PlanDisagreement{id, static_cast<CNodeId>(v),
                                 left.nodeNames()[v], l.types[v],
                                 r.types[v]});
        }
    }
    diff.meanAlphaDelta =
        internal_nodes ? alpha_delta_sum /
                             static_cast<double>(internal_nodes)
                       : 0.0;
    return diff;
}

PlanDiff
diffPlansByLevel(const PartitionPlan &left,
                 const hw::Hierarchy &leftHierarchy,
                 const PartitionPlan &right,
                 const hw::Hierarchy &rightHierarchy)
{
    ACCPAR_REQUIRE(left.nodeNames() == right.nodeNames(),
                   "plans describe different models ("
                       << left.modelName() << " vs "
                       << right.modelName() << ")");

    const std::vector<const NodePlan *> left_path =
        left.leftmostPath(leftHierarchy);
    const std::vector<const NodePlan *> right_path =
        right.leftmostPath(rightHierarchy);
    const std::size_t levels =
        std::min(left_path.size(), right_path.size());

    PlanDiff diff;
    double alpha_delta_sum = 0.0;
    for (std::size_t level = 0; level < levels; ++level) {
        const NodePlan &l = *left_path[level];
        const NodePlan &r = *right_path[level];

        const double delta = std::abs(l.alpha - r.alpha);
        diff.maxAlphaDelta = std::max(diff.maxAlphaDelta, delta);
        alpha_delta_sum += delta;

        for (std::size_t v = 0; v < l.types.size(); ++v) {
            ++diff.decisions;
            if (l.types[v] == r.types[v])
                continue;
            ++diff.typeDisagreements;
            diff.disagreements.push_back(PlanDisagreement{
                static_cast<hw::NodeId>(level),
                static_cast<CNodeId>(v), left.nodeNames()[v],
                l.types[v], r.types[v]});
        }
    }
    diff.meanAlphaDelta =
        levels ? alpha_delta_sum / static_cast<double>(levels) : 0.0;
    return diff;
}

std::string
formatPlanDiff(const PlanDiff &diff, const std::string &left_label,
               const std::string &right_label, std::size_t max_rows)
{
    std::ostringstream os;
    os.precision(4);
    os << left_label << " vs " << right_label << ": "
       << diff.typeDisagreements << "/" << diff.decisions
       << " decisions differ (" << diff.agreement() * 100.0
       << "% agreement), alpha delta mean " << diff.meanAlphaDelta
       << " max " << diff.maxAlphaDelta << '\n';
    const std::size_t shown =
        std::min(max_rows, diff.disagreements.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const PlanDisagreement &d = diff.disagreements[i];
        os << "  node " << d.hierNode << " " << d.layerName << ": "
           << partitionTypeTag(d.left) << " -> "
           << partitionTypeTag(d.right) << '\n';
    }
    if (diff.disagreements.size() > shown) {
        os << "  ... " << diff.disagreements.size() - shown
           << " more\n";
    }
    return os.str();
}

} // namespace accpar::core
