#include "core/plan_evaluator.h"

#include <algorithm>

#include "core/chain_dp.h"
#include "util/error.h"

namespace accpar::core {

namespace {

struct Evaluator
{
    const PartitionProblem &problem;
    const hw::Hierarchy &hierarchy;
    const PartitionPlan &plan;
    const CostModelConfig &config;
    PlanEvaluation result;

    /** Returns the worst accumulated cost in the subtree at @p id. */
    double
    walk(hw::NodeId id, const std::vector<DimScales> &scales)
    {
        const hw::HierarchyNode &hn = hierarchy.node(id);
        if (hn.isLeaf())
            return 0.0;

        const NodePlan &np = plan.nodePlan(id);
        const hw::AcceleratorGroup &left_group =
            hierarchy.node(hn.left).group;
        const hw::AcceleratorGroup &right_group =
            hierarchy.node(hn.right).group;
        PairCostModel model(
            GroupRates{left_group.computeDensity(),
                       left_group.linkBandwidth()},
            GroupRates{right_group.computeDensity(),
                       right_group.linkBandwidth()},
            config);
        model.setAlpha(np.alpha);

        const std::vector<LayerDims> dims = scaledDims(problem, scales);
        const double cost = evaluateAssignment(problem.condensed(), dims,
                                               model, np.types);
        result.nodeCosts[id] = cost;

        const CondensedGraph &graph = problem.condensed();
        std::vector<DimScales> left_scales(scales);
        std::vector<DimScales> right_scales(scales);
        for (std::size_t v = 0; v < graph.size(); ++v) {
            const bool junction =
                graph.node(static_cast<CNodeId>(v)).junction;
            const PartitionType t = np.types[v];
            left_scales[v] = childScales(scales[v], junction, t,
                                         np.alpha);
            right_scales[v] = childScales(scales[v], junction, t,
                                          1.0 - np.alpha);
        }
        const double below = std::max(walk(hn.left, left_scales),
                                      walk(hn.right, right_scales));
        return cost + below;
    }
};

} // namespace

PlanEvaluation
evaluatePlan(const PartitionProblem &problem,
             const hw::Hierarchy &hierarchy, const PartitionPlan &plan,
             const CostModelConfig &config)
{
    Evaluator ev{problem, hierarchy, plan, config, PlanEvaluation{}};
    ev.result.nodeCosts.assign(hierarchy.nodeCount(), 0.0);
    const std::vector<DimScales> unit(problem.condensed().size());
    ev.result.worstPathCost = ev.walk(hierarchy.root(), unit);
    return std::move(ev.result);
}

} // namespace accpar::core
