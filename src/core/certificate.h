/**
 * @file
 * Plan certificates: the evidence trail of one hierarchical solve.
 *
 * A certificate records, per internal hierarchy node, everything the
 * DP consulted while choosing that node's assignment: the dense
 * [node][type] and [edge][from][to] cost tables, the Bellman cost and
 * parent-pointer rows of the root chain, the exit state, the effective
 * type restrictions, and the chosen ratio with its bisection bracket
 * and iteration history. An independent checker
 * (analysis::CertificateChecker) can then re-derive every cell from
 * PairCostModel and replay the recurrence without trusting — or even
 * including — the solver kernel (src/core/dp_kernel.h is deliberately
 * not reachable from this header; tools/accpar_lint.py rule ALINT05
 * enforces
 * the same for the checker).
 *
 * Certificates are pure data: emission lives in DpKernel and the
 * hierarchical solver, serialization in core/certificate_io.h,
 * checking in src/analysis/certificate_checker.h.
 */

#ifndef ACCPAR_CORE_CERTIFICATE_H
#define ACCPAR_CORE_CERTIFICATE_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chain_dp.h"
#include "core/cost_model.h"
#include "core/partition_type.h"
#include "core/ratio_solver.h"
#include "hw/hierarchy.h"

namespace accpar::core {

/** One condensed edge with its full [from][to] transition-cost table.
 *  Cells whose endpoint types are not allowed are zero and carry no
 *  meaning (they serialize as null). */
struct CertificateEdge
{
    CNodeId from = kNoEntryNode;
    CNodeId to = kNoEntryNode;
    /** Boundary tensor elements: min(producer output, consumer input). */
    double boundary = 0.0;
    /** cost[fromType * 3 + toType]. */
    std::array<double, 9> cost{};
};

/** The evidence recorded for one internal hierarchy node's solve. */
struct NodeCertificate
{
    /** Chosen ratio (left child group's share). */
    double alpha = 0.5;
    /** Final bracket containing alpha: the bisection interval for
     *  RatioPolicy::ExactBalance, degenerate [alpha, alpha] otherwise
     *  (widened to cover alpha when the adaptive loop converges). */
    double alphaLo = 0.5;
    double alphaHi = 0.5;
    /** Every accepted ratio iterate, initial guess first; the last
     *  entry equals alpha. */
    std::vector<double> alphaHistory;

    /** Modeled pair cost of the chosen assignment. */
    double cost = 0.0;
    /** Chosen type per condensed node, indexed by CNodeId. */
    std::vector<PartitionType> types;
    /** Effective restrictions of the final solve (strategy restrictions
     *  intersected with granularity feasibility), indexed by CNodeId. */
    TypeRestrictions allowed;

    /** nodeTable[v][t]: pair node cost; disallowed cells are zero. */
    std::vector<std::array<double, 3>> nodeTable;
    /** Every condensed edge, grouped by consumer in CNodeId order
     *  (the order the graph lists predecessors). */
    std::vector<CertificateEdge> edges;

    /** Root-chain element nodes, in chain order. */
    std::vector<CNodeId> chainNodes;
    /** dpCost[elem][t]: accumulated Bellman cost; +inf = infeasible. */
    std::vector<std::array<double, 3>> dpCost;
    /** dpParent[elem][t]: predecessor type index the optimum came
     *  from; -1 for the first element or infeasible cells. */
    std::vector<std::array<std::int8_t, 3>> dpParent;
    /** Argmin type index at the last root-chain element. */
    int exitType = -1;
};

/** A full certificate for one (model, array, strategy) solve. */
class PlanCertificate
{
  public:
    PlanCertificate() = default;
    PlanCertificate(std::string strategy, std::string model,
                    std::size_t hierarchy_nodes,
                    std::vector<std::string> node_names,
                    const CostModelConfig &cost,
                    RatioPolicy ratio_policy);

    const std::string &strategyName() const { return _strategy; }
    const std::string &modelName() const { return _model; }

    /** Condensed-node names, indexed by CNodeId. */
    const std::vector<std::string> &nodeNames() const { return _names; }

    /** The cost configuration the search ran under; the checker
     *  rebuilds its independent PairCostModel from this. */
    const CostModelConfig &searchCost() const { return _cost; }
    RatioPolicy ratioPolicy() const { return _ratioPolicy; }

    std::size_t hierarchyNodeCount() const { return _nodes.size(); }

    /** Stores the evidence of hierarchy node @p id. Distinct ids own
     *  distinct slots, so sibling subtrees may emit concurrently (the
     *  same argument that makes PartitionPlan writes race-free). */
    void setNodeCertificate(hw::NodeId id, NodeCertificate certificate);

    bool hasNodeCertificate(hw::NodeId id) const;

    /** Evidence at hierarchy node @p id; must exist. */
    const NodeCertificate &nodeCertificate(hw::NodeId id) const;

  private:
    std::string _strategy;
    std::string _model;
    std::vector<std::string> _names;
    CostModelConfig _cost;
    RatioPolicy _ratioPolicy = RatioPolicy::PaperLinear;
    std::vector<std::optional<NodeCertificate>> _nodes;
};

} // namespace accpar::core

#endif // ACCPAR_CORE_CERTIFICATE_H
