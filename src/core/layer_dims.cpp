#include "core/layer_dims.h"

#include "util/error.h"

namespace accpar::core {

util::Flops
LayerDims::flopsForward() const
{
    const double k = di * kernelArea;
    if (k <= 0.0)
        return 0.0;
    return sizeOutput() * (2.0 * k - 1.0);
}

util::Flops
LayerDims::flopsBackward() const
{
    const double k = dOut * kernelArea;
    if (k <= 0.0)
        return 0.0;
    return sizeInput() * (2.0 * k - 1.0);
}

util::Flops
LayerDims::flopsGradient() const
{
    const double k = b * spatialOut;
    if (k <= 0.0)
        return 0.0;
    return sizeWeight() * (2.0 * k - 1.0);
}

util::Flops
LayerDims::flopsTotal() const
{
    return flopsForward() + flopsBackward() + flopsGradient();
}

LayerDims
LayerDims::scaled(double s_b, double s_di, double s_do) const
{
    ACCPAR_ASSERT(s_b > 0.0 && s_di > 0.0 && s_do > 0.0,
                  "scale factors must be positive");
    LayerDims out = *this;
    out.b *= s_b;
    out.di *= s_di;
    out.dOut *= s_do;
    return out;
}

LayerDims
layerDimsFor(const graph::Graph &graph, graph::LayerId id)
{
    const graph::Layer &layer = graph.layer(id);
    ACCPAR_REQUIRE(layer.hasWeights(),
                   "layerDimsFor expects a weighted layer, got "
                       << layer.name);
    const graph::TensorShape &in = graph.inputShape(id);
    const graph::TensorShape &out = layer.outputShape;

    LayerDims d;
    d.b = static_cast<double>(in.n);
    d.di = static_cast<double>(in.c);
    d.dOut = static_cast<double>(out.c);
    d.spatialIn = static_cast<double>(in.spatialSize());
    d.spatialOut = static_cast<double>(out.spatialSize());
    if (layer.kind == graph::LayerKind::Conv) {
        const graph::ConvAttrs &a = layer.conv();
        d.kernelArea = static_cast<double>(a.kernelH * a.kernelW);
    } else {
        d.kernelArea = 1.0;
    }
    return d;
}

LayerDims
junctionDims(const graph::TensorShape &shape)
{
    LayerDims d;
    d.b = static_cast<double>(shape.n);
    d.di = static_cast<double>(shape.c);
    d.dOut = static_cast<double>(shape.c);
    d.spatialIn = static_cast<double>(shape.spatialSize());
    d.spatialOut = d.spatialIn;
    d.kernelArea = 1.0;
    return d;
}

} // namespace accpar::core
