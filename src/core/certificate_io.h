/**
 * @file
 * Plan-certificate serialization ("accpar-cert-v1" JSON documents).
 *
 * Mirrors plan_io: a certificate saves to pretty-printed JSON and loads
 * back either through throwing convenience wrappers or through
 * diagnostic-collecting variants that report precise rule codes
 * (ACIO01..ACIO05, see DESIGN.md §9) instead of crashing on malformed
 * input. Serialization is lossless — emit → load → re-emit is
 * byte-identical — so certificate files can be fingerprinted, shipped,
 * and audited out-of-band from the solve that produced them.
 */

#ifndef ACCPAR_CORE_CERTIFICATE_IO_H
#define ACCPAR_CORE_CERTIFICATE_IO_H

#include <optional>
#include <string>

#include "analysis/diagnostic.h"
#include "core/certificate.h"
#include "hw/hierarchy.h"
#include "util/json.h"

namespace accpar::core {

/**
 * Serializes @p certificate. Cost-table cells whose endpoint types are
 * disallowed carry no information and serialize as null, as do
 * infeasible (+inf) Bellman cells; everything else round-trips exactly
 * (doubles are printed with %.17g).
 */
util::Json certificateToJson(const PlanCertificate &certificate,
                             const hw::Hierarchy &hierarchy);

/**
 * Restores a certificate serialized by certificateToJson. Structural
 * problems are reported into @p sink (codes ACIO01..ACIO05) and
 * std::nullopt is returned.
 */
std::optional<PlanCertificate>
certificateFromJson(const util::Json &json,
                    const hw::Hierarchy &hierarchy,
                    analysis::DiagnosticSink &sink);

/** Throwing variant; raises ConfigError with rendered diagnostics. */
PlanCertificate certificateFromJson(const util::Json &json,
                                    const hw::Hierarchy &hierarchy);

/** Writes @p certificate to @p path (pretty-printed JSON). */
void saveCertificate(const PlanCertificate &certificate,
                     const hw::Hierarchy &hierarchy,
                     const std::string &path);

/** Diagnostic-collecting load (ACIO01 on unreadable or unparseable
 *  files). */
std::optional<PlanCertificate>
loadCertificate(const std::string &path, const hw::Hierarchy &hierarchy,
                analysis::DiagnosticSink &sink);

/** Throwing variant of loadCertificate. */
PlanCertificate loadCertificate(const std::string &path,
                                const hw::Hierarchy &hierarchy);

/**
 * 64-bit FNV-1a over the compact serialization of @p doc, rendered as
 * 16 lowercase hex digits. Service `plan` responses carry this for
 * each emitted certificate so cached plans can be matched to the
 * certificate files that prove them.
 */
std::string certificateFingerprint(const util::Json &doc);

} // namespace accpar::core

#endif // ACCPAR_CORE_CERTIFICATE_IO_H
