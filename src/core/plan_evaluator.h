/**
 * @file
 * Plan evaluation: recomputes the modeled cost of a recorded plan without
 * searching. Used to cross-check the solver's bookkeeping, to compare
 * plans produced under different objectives on equal footing, and to
 * derive the worst root-to-leaf accumulated cost of a hierarchy.
 */

#ifndef ACCPAR_CORE_PLAN_EVALUATOR_H
#define ACCPAR_CORE_PLAN_EVALUATOR_H

#include <vector>

#include "core/cost_model.h"
#include "core/hierarchical_solver.h"
#include "core/plan.h"
#include "hw/hierarchy.h"

namespace accpar::core {

/** Per-hierarchy-node recomputed costs of a plan. */
struct PlanEvaluation
{
    /** Pair-combined cost per hierarchy node (0 for leaves). */
    std::vector<double> nodeCosts;
    /** Max over leaves of the summed costs of all ancestor nodes. */
    double worstPathCost = 0.0;
};

/**
 * Walks @p hierarchy with the plan's recorded types and ratios, scaling
 * dims exactly like the solver, and recomputes every node's cost under
 * @p config. The config may differ from the one the plan was searched
 * with (e.g. evaluate a CommAmount-searched HyPar plan under the Time
 * objective).
 */
PlanEvaluation evaluatePlan(const PartitionProblem &problem,
                            const hw::Hierarchy &hierarchy,
                            const PartitionPlan &plan,
                            const CostModelConfig &config);

} // namespace accpar::core

#endif // ACCPAR_CORE_PLAN_EVALUATOR_H
