#include "core/hierarchical_solver.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/certificate.h"
#include "core/dp_kernel.h"
#include "core/sp_solver.h"
#include "util/error.h"
#include "util/logging.h"

namespace accpar::core {

PartitionProblem::PartitionProblem(const graph::Graph &model)
    : _condensed(model)
{
    // Structural classification: models the legacy chain decomposition
    // recognizes keep the frozen DP-kernel path (plans stay
    // byte-identical to tests/support/legacy_dp); every other graph —
    // SP shapes the chain view cannot express as well as genuinely
    // non-SP graphs — gets the general decomposition tree for the
    // SP-tree solver.
    try {
        _chain = decomposeSeriesParallel(_condensed);
        _hasChain = true;
    } catch (const util::Error &) {
        std::vector<std::vector<int>> succs(_condensed.size());
        for (std::size_t v = 0; v < _condensed.size(); ++v) {
            for (CNodeId p : _condensed.node(static_cast<CNodeId>(v)).preds)
                succs[p].push_back(static_cast<int>(v));
        }
        _spTree = graph::decomposeSpTree(succs);
    }
    if (_hasChain)
        _dpStructure = std::make_unique<DpStructure>(_condensed, _chain);
    _baseDims.reserve(_condensed.size());
    for (const CondensedNode &node : _condensed.nodes())
        _baseDims.push_back(node.dims);
}

PartitionProblem::~PartitionProblem() = default;

const DpStructure &
PartitionProblem::dpStructure() const
{
    ACCPAR_REQUIRE(_hasChain,
                   "model " << _condensed.modelName()
                            << " is not chain-decomposable; it has no "
                               "compiled DP structure");
    return *_dpStructure;
}

const Chain &
PartitionProblem::chain() const
{
    ACCPAR_REQUIRE(_hasChain,
                   "model " << _condensed.modelName()
                            << " is not chain-decomposable; this "
                               "problem uses the general SP tree");
    return _chain;
}

const graph::SpTree &
PartitionProblem::spTree() const
{
    ACCPAR_REQUIRE(!_hasChain,
                   "model " << _condensed.modelName()
                            << " is chain-decomposable; the SP tree "
                               "is not built for chain-mode problems");
    return _spTree;
}

std::vector<std::string>
PartitionProblem::nodeNames() const
{
    std::vector<std::string> names;
    names.reserve(_condensed.size());
    for (const CondensedNode &node : _condensed.nodes())
        names.push_back(node.name);
    return names;
}

DimScales
childScales(const DimScales &scales, bool junction, PartitionType type,
            double ratio)
{
    ACCPAR_REQUIRE(ratio > 0.0 && ratio < 1.0,
                   "child ratio must be in (0, 1), got " << ratio);
    DimScales out = scales;
    if (junction) {
        // A junction holds one tensor: batch plus a single channel
        // dimension, so Type-II and Type-III scale the same dim.
        if (type == PartitionType::TypeI) {
            out.b *= ratio;
        } else {
            out.di *= ratio;
            out.dOut *= ratio;
        }
        return out;
    }
    switch (type) {
      case PartitionType::TypeI:
        out.b *= ratio;
        break;
      case PartitionType::TypeII:
        out.di *= ratio;
        break;
      case PartitionType::TypeIII:
        out.dOut *= ratio;
        break;
    }
    return out;
}

std::vector<LayerDims>
scaledDims(const PartitionProblem &problem,
           const std::vector<DimScales> &scales)
{
    const CondensedGraph &graph = problem.condensed();
    ACCPAR_REQUIRE(scales.size() == graph.size(),
                   "scales size mismatch: " << scales.size() << " vs "
                                            << graph.size());
    std::vector<LayerDims> dims;
    dims.reserve(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i) {
        dims.push_back(problem.baseDims()[i].scaled(
            scales[i].b, scales[i].di, scales[i].dOut));
    }
    return dims;
}

bool
typeFeasible(const LayerDims &dims, bool junction, PartitionType t,
             double min_share, double min_dim)
{
    // Batch partitioning (Type-I) tolerates per-board rounding — an
    // uneven tail sample merely idles part of one board — so it is
    // always feasible. Channel partitioning below one channel per side
    // is structurally impossible for a kernel-wise trace, hence the
    // granularity floor applies to Type-II/III only.
    double dim;
    switch (t) {
      case PartitionType::TypeI:
        return true;
      case PartitionType::TypeII:
        dim = dims.di;
        break;
      case PartitionType::TypeIII:
        dim = junction ? dims.di : dims.dOut;
        break;
      default:
        throw util::InternalError("unknown PartitionType");
    }
    return dim * min_share >= min_dim;
}

namespace {

TypeRestrictions
buildRestrictions(const CondensedGraph &graph,
                  const AllowedTypesFn &allowed)
{
    if (!allowed)
        return unrestrictedTypes(graph);
    TypeRestrictions out(graph.size());
    for (std::size_t i = 0; i < graph.size(); ++i) {
        out[i] = allowed(graph.node(static_cast<CNodeId>(i)));
        ACCPAR_REQUIRE(!out[i].empty(),
                       "allowedTypes returned an empty set for node "
                           << graph.node(static_cast<CNodeId>(i)).name);
    }
    return out;
}

double
initialAlpha(RatioPolicy policy, const GroupRates &left,
             const GroupRates &right)
{
    switch (policy) {
      case RatioPolicy::Fixed:
        return 0.5;
      case RatioPolicy::ComputeProportional:
      case RatioPolicy::PaperLinear:
      case RatioPolicy::ExactBalance:
        return left.compute / (left.compute + right.compute);
    }
    throw util::InternalError("unknown RatioPolicy");
}

/** Recursive solver state shared across hierarchy nodes. */
struct HierSolver
{
    const PartitionProblem &problem;
    const hw::Hierarchy &hierarchy;
    const SolverOptions &options;
    const SolveContext &context;
    const TypeRestrictions restrictions;
    PartitionPlan plan;

    HierSolver(const PartitionProblem &p, const hw::Hierarchy &h,
               const SolverOptions &o, const SolveContext &c)
        : problem(p),
          hierarchy(h),
          options(o),
          context(c),
          restrictions(buildRestrictions(p.condensed(), o.allowedTypes)),
          plan(o.strategyName, p.condensed().modelName(), h.nodeCount(),
               p.nodeNames())
    {
    }

    /**
     * Intersects the strategy's allowed types with the integer-
     * granularity feasibility at the current dims and ratio; falls back
     * to the largest-dimension allowed type when nothing is feasible.
     */
    TypeRestrictions
    effectiveRestrictions(const std::vector<LayerDims> &dims,
                          double alpha) const
    {
        if (options.minDimPerSide <= 0.0)
            return restrictions;
        const CondensedGraph &graph = problem.condensed();
        const double min_share = std::min(alpha, 1.0 - alpha);
        TypeRestrictions out(restrictions.size());
        for (std::size_t v = 0; v < restrictions.size(); ++v) {
            const CondensedNode &node =
                graph.node(static_cast<CNodeId>(v));
            for (PartitionType t : restrictions[v]) {
                if (typeFeasible(dims[v], node.junction, t, min_share,
                                 options.minDimPerSide))
                    out[v].push_back(t);
            }
            if (out[v].empty()) {
                // Nothing splits cleanly; keep the type whose dimension
                // is largest so the distortion is smallest.
                PartitionType best = restrictions[v].front();
                double best_dim = -1.0;
                for (PartitionType t : restrictions[v]) {
                    const double dim =
                        t == PartitionType::TypeI
                            ? dims[v].b
                            : (t == PartitionType::TypeII
                                   ? dims[v].di
                                   : (node.junction ? dims[v].di
                                                    : dims[v].dOut));
                    if (dim > best_dim) {
                        best_dim = dim;
                        best = t;
                    }
                }
                out[v].push_back(best);
            }
        }
        return out;
    }

    void
    solveNode(hw::NodeId id, const std::vector<DimScales> &scales)
    {
        const hw::HierarchyNode &hn = hierarchy.node(id);
        if (hn.isLeaf())
            return;

        const hw::AcceleratorGroup &left_group =
            hierarchy.node(hn.left).group;
        const hw::AcceleratorGroup &right_group =
            hierarchy.node(hn.right).group;
        const GroupRates left{left_group.computeDensity(),
                              left_group.linkBandwidth()};
        const GroupRates right{right_group.computeDensity(),
                               right_group.linkBandwidth()};

        PairCostModel model(left, right, options.cost);
        if (context.memo)
            model.attachCache(context.memo);
        double alpha = initialAlpha(options.ratioPolicy, left, right);
        model.setAlpha(alpha);

        const std::vector<LayerDims> dims = scaledDims(problem, scales);
        const CondensedGraph &graph = problem.condensed();

        // One compiled search per hierarchy node: the decomposition
        // structure is fixed across the adaptive-ratio iterations, so
        // only the cost tables are refilled per alpha. Chain-mode
        // problems keep the frozen DP kernel; everything else runs
        // the SP-tree solver over the same cost entry points.
        const bool emit = context.certificate != nullptr;
        std::vector<double> alpha_history;
        if (emit)
            alpha_history.push_back(alpha);
        std::optional<DpKernel> kernel;
        std::optional<SpSolver> spSolver;
        if (problem.hasChain())
            kernel.emplace(problem.dpStructure(), dims);
        else
            spSolver.emplace(graph, problem.spTree(), dims);
        const auto solveOnce = [&](const TypeRestrictions &types) {
            return kernel ? kernel->solve(model, types)
                          : spSolver->solve(model, types);
        };
        TypeRestrictions allowed = effectiveRestrictions(dims, alpha);
        ChainDpResult result = solveOnce(allowed);
        RatioBracket bracket{alpha, alpha};
        const bool adaptive =
            options.ratioPolicy == RatioPolicy::PaperLinear ||
            options.ratioPolicy == RatioPolicy::ExactBalance;
        if (adaptive) {
            for (int iter = 0; iter < options.ratioIterations; ++iter) {
                const RatioCostTables tables(graph, dims, model,
                                             result.types);
                const double next =
                    options.ratioPolicy == RatioPolicy::PaperLinear
                        ? solveRatioLinear(tables, model.alpha())
                        : solveRatioExact(tables,
                                          emit ? &bracket : nullptr);
                if (std::abs(next - alpha) < 1e-9)
                    break;
                alpha = next;
                if (emit)
                    alpha_history.push_back(alpha);
                model.setAlpha(alpha);
                allowed = effectiveRestrictions(dims, alpha);
                result = solveOnce(allowed);
            }
        }

        ACCPAR_DEBUG("hier node " << id << " alpha=" << alpha << " cost="
                                  << result.cost << " types="
                                  << formatTypeSequence(result.types));

        NodePlan node_plan;
        node_plan.alpha = alpha;
        node_plan.types = result.types;
        node_plan.cost = result.cost;
        plan.setNodePlan(id, std::move(node_plan));

        if (emit) {
            NodeCertificate cert;
            cert.alpha = alpha;
            if (options.ratioPolicy == RatioPolicy::ExactBalance) {
                // The loop may converge without accepting the last
                // iterate, leaving alpha up to the convergence epsilon
                // outside the final bisection interval; widen so the
                // recorded bracket always contains the recorded alpha.
                cert.alphaLo = std::min(bracket.lo, alpha);
                cert.alphaHi = std::max(bracket.hi, alpha);
            } else {
                cert.alphaLo = alpha;
                cert.alphaHi = alpha;
            }
            cert.alphaHistory = std::move(alpha_history);
            cert.cost = result.cost;
            cert.types = result.types;
            kernel->extractCertificate(allowed, cert);
            context.certificate->setNodeCertificate(id,
                                                    std::move(cert));
        }

        // Recurse with scaled dims: the left child sees alpha's share of
        // each partitioned dimension, the right child the remainder.
        std::vector<DimScales> left_scales(scales);
        std::vector<DimScales> right_scales(scales);
        for (std::size_t v = 0; v < graph.size(); ++v) {
            const bool junction =
                graph.node(static_cast<CNodeId>(v)).junction;
            const PartitionType t = result.types[v];
            left_scales[v] = childScales(scales[v], junction, t, alpha);
            right_scales[v] =
                childScales(scales[v], junction, t, 1.0 - alpha);
        }

        // The two subtrees depend only on this node's decision, and
        // every hierarchy node owns a distinct plan slot, so they may
        // solve concurrently without changing any result.
        if (context.pool && context.pool->concurrency() > 1 &&
            !hierarchy.node(hn.left).isLeaf() &&
            !hierarchy.node(hn.right).isLeaf()) {
            std::vector<std::function<void()>> tasks;
            tasks.emplace_back(
                [&] { solveNode(hn.left, left_scales); });
            tasks.emplace_back(
                [&] { solveNode(hn.right, right_scales); });
            context.pool->run(std::move(tasks));
        } else {
            solveNode(hn.left, left_scales);
            solveNode(hn.right, right_scales);
        }
    }
};

} // namespace

PartitionPlan
solveHierarchy(const PartitionProblem &problem,
               const hw::Hierarchy &hierarchy,
               const SolverOptions &options)
{
    return solveHierarchy(problem, hierarchy, options, SolveContext{});
}

PartitionPlan
solveHierarchy(const PartitionProblem &problem,
               const hw::Hierarchy &hierarchy,
               const SolverOptions &options, const SolveContext &context)
{
    if (context.certificate) {
        // Certificates serialize the chain DP's evidence (Bellman
        // rows over the compiled chain); the SP-tree solver has no
        // chain to record, so certificate emission requires the
        // legacy-decomposable structure.
        ACCPAR_REQUIRE(problem.hasChain(),
                       "plan certificates require a chain-decomposable "
                       "(series-parallel) model; "
                           << problem.condensed().modelName()
                           << " is solved by the SP-tree fallback");
        *context.certificate = PlanCertificate(
            options.strategyName, problem.condensed().modelName(),
            hierarchy.nodeCount(), problem.nodeNames(), options.cost,
            options.ratioPolicy);
    }
    HierSolver solver(problem, hierarchy, options, context);
    const std::vector<DimScales> unit(problem.condensed().size());
    solver.solveNode(hierarchy.root(), unit);
    return std::move(solver.plan);
}

PartitionPlan
solveHierarchy(const graph::Graph &model, const hw::Hierarchy &hierarchy,
               const SolverOptions &options)
{
    const PartitionProblem problem(model);
    return solveHierarchy(problem, hierarchy, options);
}

std::vector<PartitionPlan>
solveHierarchyBatch(const PartitionProblem &problem,
                    const std::vector<const hw::Hierarchy *> &hierarchies,
                    const SolverOptions &options,
                    const SolveContext &context)
{
    ACCPAR_REQUIRE(context.certificate == nullptr,
                   "batched hierarchy solves do not emit certificates; "
                   "re-solve the chosen candidate to emit one");
    std::vector<PartitionPlan> plans(hierarchies.size());
    const auto solveOne = [&](std::size_t i) {
        ACCPAR_REQUIRE(hierarchies[i] != nullptr,
                       "null hierarchy candidate in batch");
        plans[i] =
            solveHierarchy(problem, *hierarchies[i], options, context);
    };
    // Each candidate writes only its own plan slot, so candidates can
    // run concurrently on top of the (already reentrant) sibling
    // parallelism inside each solve.
    if (context.pool && context.pool->concurrency() > 1 &&
        hierarchies.size() > 1) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(hierarchies.size());
        for (std::size_t i = 0; i < hierarchies.size(); ++i)
            tasks.emplace_back([&, i] { solveOne(i); });
        context.pool->run(std::move(tasks));
    } else {
        for (std::size_t i = 0; i < hierarchies.size(); ++i)
            solveOne(i);
    }
    return plans;
}

} // namespace accpar::core
