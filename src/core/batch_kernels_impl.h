/**
 * @file
 * Backend-generic kernel templates behind core/batch_kernels.h,
 * instantiated once per vector backend in separate translation units
 * (core/batch_kernels.cpp for scalar/NEON, core/batch_kernels_avx2.cpp
 * under the AVX2 target flags).
 *
 * Bit-identity: each lane performs exactly the operation sequence of
 * the scalar reference — same associativity, same order of terms, one
 * IEEE binary64 operation per step (the instantiating translation
 * units disable floating-point contraction, see util/simd.h). The
 * batched sweep pads the tail group by repeating the last alpha; the
 * padding lanes are computed and discarded, never stored.
 */

#ifndef ACCPAR_CORE_BATCH_KERNELS_IMPL_H
#define ACCPAR_CORE_BATCH_KERNELS_IMPL_H

#include <cstddef>

#include "core/batch_kernels.h"
#include "util/simd.h"

namespace accpar::core::kernels {

/** candidates9 over one vector backend; see BatchKernelOps. The three
 *  4-wide column stores overlap by one lane; ascending target order
 *  makes each overlapped slot end up with its correct value, and the
 *  final store reaches cand[9], which callers must provide. */
template <typename V>
void
candidates9(const double *prev, const double *transT, const double *node,
            double *cand)
{
    const V p = V::loadu(prev);
    for (int t = 0; t < 3; ++t) {
        const V c = V::add(V::add(p, V::loadu(transT + 3 * t)),
                           V::broadcast(node[t]));
        c.storeu(cand + 3 * t);
    }
}

/** One full group of util::simd::kLanes alphas through the term pass;
 *  both side accumulators advance term-by-term exactly like two
 *  sequential sideTotal() walks. */
template <typename V>
void
ratioBothSidesGroup(const RatioTermsView &view, const double *alphas,
                    double *outLeft, double *outRight)
{
    const V one = V::broadcast(1.0);
    const V own_l = V::loadu(alphas);
    const V other_l = V::sub(one, own_l);
    // The right side's own share is 1 - alpha and its "other" is
    // 1 - (1 - alpha), matching the sequential derivation bit for bit.
    const V own_r = V::sub(one, own_l);
    const V other_r = V::sub(one, own_r);

    const V bpe = V::broadcast(view.bpe);
    const V link0 = V::broadcast(view.link[0]);
    const V link1 = V::broadcast(view.link[1]);
    const V compute0 = V::broadcast(view.compute[0]);
    const V compute1 = V::broadcast(view.compute[1]);

    V acc_l = V::zero();
    V acc_r = V::zero();
    for (std::size_t i = 0; i < view.count; ++i) {
        switch (view.kind[i]) {
          case RatioTermsView::NodeComm: {
            const V a = V::broadcast(view.a[i]);
            acc_l = V::add(acc_l, a);
            acc_r = V::add(acc_r, a);
            break;
          }
          case RatioTermsView::NodeTime: {
            V cost_l = V::broadcast(view.aSide0[i]);
            V cost_r = V::broadcast(view.aSide1[i]);
            if (view.includeCompute) {
                const V flops = V::broadcast(view.flops[i]);
                cost_l = V::add(
                    cost_l, V::div(V::mul(own_l, flops), compute0));
                cost_r = V::add(
                    cost_r, V::div(V::mul(own_r, flops), compute1));
            }
            acc_l = V::add(acc_l, cost_l);
            acc_r = V::add(acc_r, cost_r);
            break;
          }
          case RatioTermsView::EdgeBilinear: {
            const V a = V::broadcast(view.a[i]);
            const V x_l = V::mul(V::mul(own_l, other_l), a);
            const V x_r = V::mul(V::mul(own_r, other_r), a);
            const V elems_l = V::add(x_l, x_l);
            const V elems_r = V::add(x_r, x_r);
            acc_l = V::add(acc_l,
                           view.time
                               ? V::div(V::mul(elems_l, bpe), link0)
                               : elems_l);
            acc_r = V::add(acc_r,
                           view.time
                               ? V::div(V::mul(elems_r, bpe), link1)
                               : elems_r);
            break;
          }
          case RatioTermsView::EdgeOther: {
            const V a = V::broadcast(view.a[i]);
            const V elems_l = V::mul(other_l, a);
            const V elems_r = V::mul(other_r, a);
            acc_l = V::add(acc_l,
                           view.time
                               ? V::div(V::mul(elems_l, bpe), link0)
                               : elems_l);
            acc_r = V::add(acc_r,
                           view.time
                               ? V::div(V::mul(elems_r, bpe), link1)
                               : elems_r);
            break;
          }
        }
    }
    acc_l.storeu(outLeft);
    acc_r.storeu(outRight);
}

/** One alpha through the term pass in plain scalar arithmetic — the
 *  identical per-lane operation sequence as the vector groups and the
 *  scalar reference kernel, so routing a lane here never changes its
 *  bits. */
inline void
ratioBothSidesLane(const RatioTermsView &view, double alpha,
                   double *outLeft, double *outRight)
{
    const double own_l = alpha;
    const double other_l = 1.0 - own_l;
    const double own_r = 1.0 - alpha;
    const double other_r = 1.0 - own_r;
    double acc_l = 0.0;
    double acc_r = 0.0;
    for (std::size_t i = 0; i < view.count; ++i) {
        switch (view.kind[i]) {
          case RatioTermsView::NodeComm:
            acc_l += view.a[i];
            acc_r += view.a[i];
            break;
          case RatioTermsView::NodeTime: {
            double cost_l = view.aSide0[i];
            double cost_r = view.aSide1[i];
            if (view.includeCompute) {
                cost_l += own_l * view.flops[i] / view.compute[0];
                cost_r += own_r * view.flops[i] / view.compute[1];
            }
            acc_l += cost_l;
            acc_r += cost_r;
            break;
          }
          case RatioTermsView::EdgeBilinear: {
            const double x_l = own_l * other_l * view.a[i];
            const double x_r = own_r * other_r * view.a[i];
            const double elems_l = x_l + x_l;
            const double elems_r = x_r + x_r;
            acc_l += view.time ? elems_l * view.bpe / view.link[0]
                               : elems_l;
            acc_r += view.time ? elems_r * view.bpe / view.link[1]
                               : elems_r;
            break;
          }
          case RatioTermsView::EdgeOther: {
            const double elems_l = other_l * view.a[i];
            const double elems_r = other_r * view.a[i];
            acc_l += view.time ? elems_l * view.bpe / view.link[0]
                               : elems_l;
            acc_r += view.time ? elems_r * view.bpe / view.link[1]
                               : elems_r;
            break;
          }
        }
    }
    *outLeft = acc_l;
    *outRight = acc_r;
}

/** ratioBothSides over one vector backend: full groups straight from
 *  the caller's (possibly unaligned) arrays. A tail that fills most of
 *  a group is padded with the last alpha into a stack buffer (the
 *  padding lanes are computed and discarded); a mostly-empty tail —
 *  in particular solveRatioLinear's single-alpha pass — walks the
 *  scalar lane kernel instead, which is cheaper than a padded group
 *  and produces the same bits. */
template <typename V>
void
ratioBothSides(const RatioTermsView &view, const double *alphas,
               std::size_t n, double *outLeft, double *outRight)
{
    constexpr std::size_t kGroup =
        static_cast<std::size_t>(util::simd::kLanes);
    std::size_t i = 0;
    for (; i + kGroup <= n; i += kGroup)
        ratioBothSidesGroup<V>(view, alphas + i, outLeft + i,
                               outRight + i);
    if (i == n)
        return;
    const std::size_t rem = n - i;
    if (rem * 2 <= kGroup) {
        for (std::size_t k = 0; k < rem; ++k)
            ratioBothSidesLane(view, alphas[i + k], outLeft + i + k,
                               outRight + i + k);
        return;
    }
    double pad[kGroup];
    double left[kGroup];
    double right[kGroup];
    for (std::size_t k = 0; k < kGroup; ++k)
        pad[k] = alphas[i + k < n ? i + k : n - 1];
    ratioBothSidesGroup<V>(view, pad, left, right);
    for (std::size_t k = 0; k < rem; ++k) {
        outLeft[i + k] = left[k];
        outRight[i + k] = right[k];
    }
}

} // namespace accpar::core::kernels

#endif // ACCPAR_CORE_BATCH_KERNELS_IMPL_H
