/**
 * @file
 * "One Weird Trick" (Krizhevsky, arXiv:1404.5997; paper §3.5).
 *
 * A static, empirical configuration: data parallelism (Type-I) for CONV
 * layers and model parallelism (Type-II) for FC layers, equal ratios.
 * Junctions (residual joins) sit between CONV layers and follow Type-I.
 */

#ifndef ACCPAR_STRATEGIES_OWT_H
#define ACCPAR_STRATEGIES_OWT_H

#include "strategies/strategy.h"

namespace accpar::strategies {

/** CONV -> Type-I, FC -> Type-II, equal ratios. */
class Owt : public Strategy
{
  public:
    std::string name() const override { return "owt"; }
    std::string label() const override { return "OWT"; }

    core::PartitionPlan plan(const core::PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const core::SolveContext &context) const
        override;

    using Strategy::plan;
};

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_OWT_H
