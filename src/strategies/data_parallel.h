/**
 * @file
 * The data-parallelism baseline (paper §6.1 "DP", after [106]).
 *
 * Every accelerator replicates the full model and processes an equal
 * share of the mini-batch: Type-I with ratio 0.5 at every hierarchy level
 * for every layer. On heterogeneous arrays the equal split leaves the
 * faster boards idle — exactly the inefficiency AccPar's flexible ratio
 * removes.
 */

#ifndef ACCPAR_STRATEGIES_DATA_PARALLEL_H
#define ACCPAR_STRATEGIES_DATA_PARALLEL_H

#include "strategies/strategy.h"

namespace accpar::strategies {

/** All-Type-I, equal-ratio baseline. */
class DataParallel : public Strategy
{
  public:
    std::string name() const override { return "dp"; }
    std::string label() const override { return "DP"; }

    core::PartitionPlan plan(const core::PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const core::SolveContext &context) const
        override;

    using Strategy::plan;
};

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_DATA_PARALLEL_H
