/**
 * @file
 * HyPar baseline (Song et al., HPCA 2019), reimplemented from its
 * description in the AccPar paper (§3.5, §6.1).
 *
 * HyPar searches layer-wise between data parallelism and model
 * parallelism — the paper identifies these with Type-I and Type-II — by
 * the same dynamic program, but (1) its basic-type set is incomplete
 * (Type-III and five of the nine inter-layer patterns are missing from
 * its space), (2) it minimizes communication *amount* as a proxy for
 * performance (no computation term, no bandwidth), and (3) it always
 * partitions tensors equally, so it cannot exploit heterogeneous compute
 * density.
 */

#ifndef ACCPAR_STRATEGIES_HYPAR_H
#define ACCPAR_STRATEGIES_HYPAR_H

#include "strategies/strategy.h"

namespace accpar::strategies {

/** {Type-I, Type-II} search, communication-amount objective, ratio 0.5. */
class HyPar : public Strategy
{
  public:
    std::string name() const override { return "hypar"; }
    std::string label() const override { return "HyPar"; }

    core::PartitionPlan plan(const core::PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const core::SolveContext &context) const
        override;

    using Strategy::plan;

    /** Communication amount, summed over the pair, no compute term. */
    core::CostModelConfig costConfig() const override
    {
        core::CostModelConfig cost;
        cost.objective = core::ObjectiveKind::CommAmount;
        cost.reduce = core::PairReduce::Sum;
        cost.includeCompute = false;
        return cost;
    }
};

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_HYPAR_H
