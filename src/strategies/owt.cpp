#include "strategies/owt.h"

#include "graph/layer.h"

namespace accpar::strategies {

core::PartitionPlan
Owt::plan(const core::PartitionProblem &problem,
          const hw::Hierarchy &hierarchy,
          const core::SolveContext &context) const
{
    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = core::RatioPolicy::Fixed;
    options.allowedTypes = [](const core::CondensedNode &node) {
        // FC layers run model-parallel; everything else (CONV layers and
        // junctions between them) runs data-parallel.
        const bool fc = node.kind == graph::LayerKind::FullyConnected;
        return std::vector<core::PartitionType>{
            fc ? core::PartitionType::TypeII : core::PartitionType::TypeI};
    };
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
