#include "strategies/registry.h"

#include "strategies/accpar_strategy.h"
#include "strategies/data_parallel.h"
#include "strategies/hypar.h"
#include "strategies/owt.h"
#include "util/error.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace accpar::strategies {

std::vector<std::string>
strategyNames()
{
    return {"dp", "owt", "hypar", "accpar"};
}

StrategyPtr
makeStrategy(const std::string &name)
{
    const std::string key = util::toLower(util::trim(name));
    if (key == "dp")
        return std::make_unique<DataParallel>();
    if (key == "owt")
        return std::make_unique<Owt>();
    if (key == "hypar")
        return std::make_unique<HyPar>();
    if (key == "accpar")
        return std::make_unique<AccPar>();
    throw util::ConfigError("unknown strategy name: " + name);
}

std::vector<StrategyPtr>
defaultStrategies()
{
    std::vector<StrategyPtr> out;
    for (const std::string &name : strategyNames())
        out.push_back(makeStrategy(name));
    return out;
}

std::vector<core::PartitionPlan>
planAll(const std::vector<StrategyPtr> &strategies,
        const core::PartitionProblem &problem,
        const hw::Hierarchy &hierarchy, const core::SolveContext &context)
{
    std::vector<core::PartitionPlan> plans(strategies.size());
    util::parallelFor(context.pool, strategies.size(),
                      [&](std::size_t i) {
                          plans[i] = strategies[i]->plan(problem,
                                                         hierarchy,
                                                         context);
                      });
    return plans;
}

} // namespace accpar::strategies
