/**
 * @file
 * The common interface of partitioning strategies.
 *
 * A strategy maps a (model, accelerator hierarchy) pair to a hierarchical
 * PartitionPlan. The four strategies of the paper's evaluation (§6.1) are
 * provided: data parallelism (DP), "One Weird Trick" (OWT), HyPar, and
 * AccPar. All plans are executed by the same simulator, so differences in
 * reported throughput come only from the partitioning decisions.
 */

#ifndef ACCPAR_STRATEGIES_STRATEGY_H
#define ACCPAR_STRATEGIES_STRATEGY_H

#include <memory>
#include <string>
#include <vector>

#include "core/hierarchical_solver.h"
#include "core/plan.h"
#include "hw/hierarchy.h"

namespace accpar::strategies {

/** Abstract partitioning strategy. */
class Strategy
{
  public:
    virtual ~Strategy() = default;

    /** Short lowercase identifier ("dp", "owt", "hypar", "accpar"). */
    virtual std::string name() const = 0;

    /** Display label used in tables ("DP", "OWT", ...). */
    virtual std::string label() const = 0;

    /**
     * Produces the plan for @p problem on @p hierarchy. @p context
     * carries optional shared resources (thread pool for parallel
     * subtree fan-out, cost memo cache); the default-constructed
     * context solves sequentially without memoization, and results are
     * identical either way.
     */
    virtual core::PartitionPlan
    plan(const core::PartitionProblem &problem,
         const hw::Hierarchy &hierarchy,
         const core::SolveContext &context) const = 0;

    /** Convenience overload: sequential, no shared resources. */
    core::PartitionPlan plan(const core::PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy) const;

    /** Convenience overload building the problem from a model graph. */
    core::PartitionPlan plan(const graph::Graph &model,
                             const hw::Hierarchy &hierarchy) const;

    /**
     * The cost-model configuration this strategy searches (and records
     * per-node costs) under. Post-solve plan verification re-evaluates
     * costs with exactly this configuration, so the AP107 cross-check
     * is meaningful for every strategy, not just the default.
     */
    virtual core::CostModelConfig costConfig() const
    {
        return core::CostModelConfig{};
    }
};

using StrategyPtr = std::unique_ptr<Strategy>;

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_STRATEGY_H
