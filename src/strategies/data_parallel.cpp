#include "strategies/data_parallel.h"

namespace accpar::strategies {

core::PartitionPlan
DataParallel::plan(const core::PartitionProblem &problem,
                   const hw::Hierarchy &hierarchy,
                   const core::SolveContext &context) const
{
    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = core::RatioPolicy::Fixed;
    options.allowedTypes = [](const core::CondensedNode &) {
        return std::vector<core::PartitionType>{
            core::PartitionType::TypeI};
    };
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
