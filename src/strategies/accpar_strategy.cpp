#include "strategies/accpar_strategy.h"

namespace accpar::strategies {

core::PartitionPlan
AccPar::plan(const core::PartitionProblem &problem,
             const hw::Hierarchy &hierarchy,
             const core::SolveContext &context) const
{
    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = _options.ratioPolicy;
    options.ratioIterations = _options.ratioIterations;
    options.cost = costConfig();
    if (!_options.enableTypeIII) {
        options.allowedTypes = [](const core::CondensedNode &) {
            return std::vector<core::PartitionType>{
                core::PartitionType::TypeI, core::PartitionType::TypeII};
        };
    }
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
