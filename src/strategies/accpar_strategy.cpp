#include "strategies/accpar_strategy.h"

namespace accpar::strategies {

core::PartitionPlan
AccPar::plan(const core::PartitionProblem &problem,
             const hw::Hierarchy &hierarchy,
             const core::SolveContext &context) const
{
    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = _options.ratioPolicy;
    options.ratioIterations = _options.ratioIterations;
    options.cost.objective = core::ObjectiveKind::Time;
    options.cost.reduce = core::PairReduce::Max;
    options.cost.includeCompute = _options.includeCompute;
    if (!_options.enableTypeIII) {
        options.allowedTypes = [](const core::CondensedNode &) {
            return std::vector<core::PartitionType>{
                core::PartitionType::TypeI, core::PartitionType::TypeII};
        };
    }
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
