#include "strategies/hypar.h"

#include <memory>
#include <unordered_set>

namespace accpar::strategies {

core::PartitionPlan
HyPar::plan(const core::PartitionProblem &problem,
            const hw::Hierarchy &hierarchy,
            const core::SolveContext &context) const
{
    // HyPar "can only handle DNN architectures with linear structure"
    // (paper §1/§3.5). Nodes inside multi-path regions — the residual
    // blocks of ResNet — are beyond its search and fall back to data
    // parallelism (Type-I); only the linear backbone is searched.
    auto multipath = std::make_shared<std::unordered_set<core::CNodeId>>();
    for (const core::Element &element : problem.chain().elements) {
        if (!element.isParallel())
            continue;
        multipath->insert(element.node);
        for (const core::Chain &path : element.paths)
            for (core::CNodeId id : core::collectChainNodes(path))
                multipath->insert(id);
    }
    // collectChainNodes returns condensed ids; the allowed-types callback
    // receives nodes, so match on the originating layer id.
    auto multipath_layers =
        std::make_shared<std::unordered_set<graph::LayerId>>();
    for (core::CNodeId id : *multipath)
        multipath_layers->insert(problem.condensed().node(id).layer);

    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = core::RatioPolicy::Fixed;
    options.cost = costConfig();
    options.allowedTypes =
        [multipath_layers](const core::CondensedNode &node) {
            if (multipath_layers->count(node.layer)) {
                return std::vector<core::PartitionType>{
                    core::PartitionType::TypeI};
            }
            return std::vector<core::PartitionType>{
                core::PartitionType::TypeI, core::PartitionType::TypeII};
        };
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
