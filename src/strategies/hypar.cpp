#include "strategies/hypar.h"

#include <functional>
#include <memory>
#include <unordered_set>

namespace accpar::strategies {

core::PartitionPlan
HyPar::plan(const core::PartitionProblem &problem,
            const hw::Hierarchy &hierarchy,
            const core::SolveContext &context) const
{
    // HyPar "can only handle DNN architectures with linear structure"
    // (paper §1/§3.5). Nodes inside multi-path regions — the residual
    // blocks of ResNet — are beyond its search and fall back to data
    // parallelism (Type-I); only the linear backbone is searched.
    auto multipath = std::make_shared<std::unordered_set<core::CNodeId>>();
    if (problem.hasChain()) {
        for (const core::Element &element : problem.chain().elements) {
            if (!element.isParallel())
                continue;
            multipath->insert(element.node);
            for (const core::Chain &path : element.paths)
                for (core::CNodeId id : core::collectChainNodes(path))
                    multipath->insert(id);
        }
    } else {
        // Same notion on the general decomposition tree: everything
        // inside (or joining) a parallel or residual region is off the
        // linear backbone; series cut vertices at the top level are on
        // it.
        const graph::SpTree &tree = problem.spTree();
        const std::function<void(graph::SpNodeId, bool)> walk =
            [&](graph::SpNodeId id, bool inside) {
                if (id == graph::kNoSpNode)
                    return;
                const graph::SpNode &node = tree.node(id);
                switch (node.kind) {
                  case graph::SpKind::Leaf:
                    break;
                  case graph::SpKind::Series:
                    if (inside)
                        multipath->insert(tree.node(node.left).sink);
                    walk(node.left, inside);
                    walk(node.right, inside);
                    break;
                  case graph::SpKind::Parallel:
                    multipath->insert(node.sink);
                    walk(node.left, true);
                    walk(node.right, true);
                    break;
                  case graph::SpKind::Residual:
                    multipath->insert(node.sink);
                    for (int v : node.internal)
                        multipath->insert(v);
                    break;
                }
            };
        walk(tree.root(), false);
    }
    // collectChainNodes returns condensed ids; the allowed-types callback
    // receives nodes, so match on the originating layer id.
    auto multipath_layers =
        std::make_shared<std::unordered_set<graph::LayerId>>();
    for (core::CNodeId id : *multipath)
        multipath_layers->insert(problem.condensed().node(id).layer);

    core::SolverOptions options;
    options.strategyName = name();
    options.ratioPolicy = core::RatioPolicy::Fixed;
    options.cost = costConfig();
    options.allowedTypes =
        [multipath_layers](const core::CondensedNode &node) {
            if (multipath_layers->count(node.layer)) {
                return std::vector<core::PartitionType>{
                    core::PartitionType::TypeI};
            }
            return std::vector<core::PartitionType>{
                core::PartitionType::TypeI, core::PartitionType::TypeII};
        };
    return core::solveHierarchy(problem, hierarchy, options, context);
}

} // namespace accpar::strategies
