/**
 * @file
 * The AccPar strategy: complete three-type search space, joint
 * computation + communication cost model, heterogeneity-aware flexible
 * partitioning ratio (paper §4-§5).
 *
 * The knobs exposed here drive the ablation benchmarks: restricting the
 * type set to {I, II} isolates the value of Type-III; switching the ratio
 * policy isolates the value of flexible ratios; dropping the computation
 * term reduces the objective to a bandwidth-aware HyPar.
 */

#ifndef ACCPAR_STRATEGIES_ACCPAR_STRATEGY_H
#define ACCPAR_STRATEGIES_ACCPAR_STRATEGY_H

#include "strategies/strategy.h"

namespace accpar::strategies {

/** Configuration of the AccPar strategy (defaults follow the paper). */
struct AccParOptions
{
    /** Include Type-III in the search space. */
    bool enableTypeIII = true;
    /** Include the computation term in the cost. */
    bool includeCompute = true;
    /** Ratio policy; the paper's Eq. 10 linearization by default. */
    core::RatioPolicy ratioPolicy = core::RatioPolicy::PaperLinear;
    /** Fixed-point iterations of (DP, ratio) per hierarchy node. */
    int ratioIterations = 3;
};

/** Full AccPar search. */
class AccPar : public Strategy
{
  public:
    AccPar() = default;
    explicit AccPar(const AccParOptions &options) : _options(options) {}

    std::string name() const override { return "accpar"; }
    std::string label() const override { return "AccPar"; }

    const AccParOptions &options() const { return _options; }

    core::PartitionPlan plan(const core::PartitionProblem &problem,
                             const hw::Hierarchy &hierarchy,
                             const core::SolveContext &context) const
        override;

    using Strategy::plan;

    /** Time objective over the slower side; compute term optional. */
    core::CostModelConfig costConfig() const override
    {
        core::CostModelConfig cost;
        cost.objective = core::ObjectiveKind::Time;
        cost.reduce = core::PairReduce::Max;
        cost.includeCompute = _options.includeCompute;
        return cost;
    }

  private:
    AccParOptions _options;
};

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_ACCPAR_STRATEGY_H
