#include "strategies/strategy.h"

namespace accpar::strategies {

core::PartitionPlan
Strategy::plan(const graph::Graph &model,
               const hw::Hierarchy &hierarchy) const
{
    const core::PartitionProblem problem(model);
    return plan(problem, hierarchy);
}

} // namespace accpar::strategies
