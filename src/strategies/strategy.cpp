#include "strategies/strategy.h"

namespace accpar::strategies {

core::PartitionPlan
Strategy::plan(const core::PartitionProblem &problem,
               const hw::Hierarchy &hierarchy) const
{
    return plan(problem, hierarchy, core::SolveContext{});
}

core::PartitionPlan
Strategy::plan(const graph::Graph &model,
               const hw::Hierarchy &hierarchy) const
{
    const core::PartitionProblem problem(model);
    return plan(problem, hierarchy);
}

} // namespace accpar::strategies
