/**
 * @file
 * Strategy registry: the four evaluation strategies by name, in the
 * paper's presentation order.
 */

#ifndef ACCPAR_STRATEGIES_REGISTRY_H
#define ACCPAR_STRATEGIES_REGISTRY_H

#include <string>
#include <vector>

#include "strategies/strategy.h"

namespace accpar::strategies {

/** Names accepted by makeStrategy: "dp", "owt", "hypar", "accpar". */
std::vector<std::string> strategyNames();

/** Builds a strategy by name; throws ConfigError on unknown names. */
StrategyPtr makeStrategy(const std::string &name);

/** All four strategies in evaluation order (DP, OWT, HyPar, AccPar). */
std::vector<StrategyPtr> defaultStrategies();

/**
 * Plans every strategy of @p strategies on one (problem, hierarchy)
 * pair. With a pool in @p context the strategies plan concurrently
 * (each additionally fanning out its own subtrees); the returned plans
 * are in @p strategies order and identical to sequential planning.
 */
std::vector<core::PartitionPlan>
planAll(const std::vector<StrategyPtr> &strategies,
        const core::PartitionProblem &problem,
        const hw::Hierarchy &hierarchy,
        const core::SolveContext &context = {});

} // namespace accpar::strategies

#endif // ACCPAR_STRATEGIES_REGISTRY_H
