file(REMOVE_RECURSE
  "../bench/bench_tables_cost_model"
  "../bench/bench_tables_cost_model.pdb"
  "CMakeFiles/bench_tables_cost_model.dir/bench_tables_cost_model.cpp.o"
  "CMakeFiles/bench_tables_cost_model.dir/bench_tables_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
