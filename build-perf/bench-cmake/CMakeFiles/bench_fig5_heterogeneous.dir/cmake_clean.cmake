file(REMOVE_RECURSE
  "../bench/bench_fig5_heterogeneous"
  "../bench/bench_fig5_heterogeneous.pdb"
  "CMakeFiles/bench_fig5_heterogeneous.dir/bench_fig5_heterogeneous.cpp.o"
  "CMakeFiles/bench_fig5_heterogeneous.dir/bench_fig5_heterogeneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
