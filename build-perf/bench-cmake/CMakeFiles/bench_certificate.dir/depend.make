# Empty dependencies file for bench_certificate.
# This may be replaced when dependencies are built.
