file(REMOVE_RECURSE
  "../bench/bench_certificate"
  "../bench/bench_certificate.pdb"
  "CMakeFiles/bench_certificate.dir/bench_certificate.cpp.o"
  "CMakeFiles/bench_certificate.dir/bench_certificate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_certificate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
