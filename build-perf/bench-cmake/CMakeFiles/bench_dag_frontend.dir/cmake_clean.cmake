file(REMOVE_RECURSE
  "../bench/bench_dag_frontend"
  "../bench/bench_dag_frontend.pdb"
  "CMakeFiles/bench_dag_frontend.dir/bench_dag_frontend.cpp.o"
  "CMakeFiles/bench_dag_frontend.dir/bench_dag_frontend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
