# Empty compiler generated dependencies file for bench_exec_micro.
# This may be replaced when dependencies are built.
