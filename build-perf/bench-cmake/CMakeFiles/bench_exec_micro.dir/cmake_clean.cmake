file(REMOVE_RECURSE
  "../bench/bench_exec_micro"
  "../bench/bench_exec_micro.pdb"
  "CMakeFiles/bench_exec_micro.dir/bench_exec_micro.cpp.o"
  "CMakeFiles/bench_exec_micro.dir/bench_exec_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
