file(REMOVE_RECURSE
  "../bench/bench_workloads"
  "../bench/bench_workloads.pdb"
  "CMakeFiles/bench_workloads.dir/bench_workloads.cpp.o"
  "CMakeFiles/bench_workloads.dir/bench_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
