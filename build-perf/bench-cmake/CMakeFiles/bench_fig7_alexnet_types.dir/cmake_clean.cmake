file(REMOVE_RECURSE
  "../bench/bench_fig7_alexnet_types"
  "../bench/bench_fig7_alexnet_types.pdb"
  "CMakeFiles/bench_fig7_alexnet_types.dir/bench_fig7_alexnet_types.cpp.o"
  "CMakeFiles/bench_fig7_alexnet_types.dir/bench_fig7_alexnet_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_alexnet_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
