# Empty dependencies file for bench_fig7_alexnet_types.
# This may be replaced when dependencies are built.
