file(REMOVE_RECURSE
  "../bench/bench_fig6_homogeneous"
  "../bench/bench_fig6_homogeneous.pdb"
  "CMakeFiles/bench_fig6_homogeneous.dir/bench_fig6_homogeneous.cpp.o"
  "CMakeFiles/bench_fig6_homogeneous.dir/bench_fig6_homogeneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
