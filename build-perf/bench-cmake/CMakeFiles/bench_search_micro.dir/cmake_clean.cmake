file(REMOVE_RECURSE
  "../bench/bench_search_micro"
  "../bench/bench_search_micro.pdb"
  "CMakeFiles/bench_search_micro.dir/bench_search_micro.cpp.o"
  "CMakeFiles/bench_search_micro.dir/bench_search_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
