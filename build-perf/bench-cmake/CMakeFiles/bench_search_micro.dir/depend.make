# Empty dependencies file for bench_search_micro.
# This may be replaced when dependencies are built.
