file(REMOVE_RECURSE
  "../bench/bench_table8_flexibility"
  "../bench/bench_table8_flexibility.pdb"
  "CMakeFiles/bench_table8_flexibility.dir/bench_table8_flexibility.cpp.o"
  "CMakeFiles/bench_table8_flexibility.dir/bench_table8_flexibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
