# Empty dependencies file for bench_table8_flexibility.
# This may be replaced when dependencies are built.
