file(REMOVE_RECURSE
  "../bench/bench_search_anytime"
  "../bench/bench_search_anytime.pdb"
  "CMakeFiles/bench_search_anytime.dir/bench_search_anytime.cpp.o"
  "CMakeFiles/bench_search_anytime.dir/bench_search_anytime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
