file(REMOVE_RECURSE
  "../bench/bench_dp_kernel"
  "../bench/bench_dp_kernel.pdb"
  "CMakeFiles/bench_dp_kernel.dir/bench_dp_kernel.cpp.o"
  "CMakeFiles/bench_dp_kernel.dir/bench_dp_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
