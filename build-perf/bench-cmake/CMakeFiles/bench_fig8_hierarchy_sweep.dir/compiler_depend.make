# Empty compiler generated dependencies file for bench_fig8_hierarchy_sweep.
# This may be replaced when dependencies are built.
