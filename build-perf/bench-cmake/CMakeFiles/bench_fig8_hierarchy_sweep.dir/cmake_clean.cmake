file(REMOVE_RECURSE
  "../bench/bench_fig8_hierarchy_sweep"
  "../bench/bench_fig8_hierarchy_sweep.pdb"
  "CMakeFiles/bench_fig8_hierarchy_sweep.dir/bench_fig8_hierarchy_sweep.cpp.o"
  "CMakeFiles/bench_fig8_hierarchy_sweep.dir/bench_fig8_hierarchy_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hierarchy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
