# Empty dependencies file for accpar.
# This may be replaced when dependencies are built.
