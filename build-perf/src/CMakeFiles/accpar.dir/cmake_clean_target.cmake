file(REMOVE_RECURSE
  "libaccpar.a"
)
