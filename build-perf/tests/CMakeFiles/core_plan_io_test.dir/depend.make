# Empty dependencies file for core_plan_io_test.
# This may be replaced when dependencies are built.
