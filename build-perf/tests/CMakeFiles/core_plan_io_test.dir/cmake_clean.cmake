file(REMOVE_RECURSE
  "CMakeFiles/core_plan_io_test.dir/core_plan_io_test.cpp.o"
  "CMakeFiles/core_plan_io_test.dir/core_plan_io_test.cpp.o.d"
  "core_plan_io_test"
  "core_plan_io_test.pdb"
  "core_plan_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_plan_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
