# Empty dependencies file for models_inception_test.
# This may be replaced when dependencies are built.
