file(REMOVE_RECURSE
  "CMakeFiles/models_inception_test.dir/models_inception_test.cpp.o"
  "CMakeFiles/models_inception_test.dir/models_inception_test.cpp.o.d"
  "models_inception_test"
  "models_inception_test.pdb"
  "models_inception_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_inception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
