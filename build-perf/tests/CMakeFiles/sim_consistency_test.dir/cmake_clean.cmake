file(REMOVE_RECURSE
  "CMakeFiles/sim_consistency_test.dir/sim_consistency_test.cpp.o"
  "CMakeFiles/sim_consistency_test.dir/sim_consistency_test.cpp.o.d"
  "sim_consistency_test"
  "sim_consistency_test.pdb"
  "sim_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
