file(REMOVE_RECURSE
  "CMakeFiles/core_condensed_test.dir/core_condensed_test.cpp.o"
  "CMakeFiles/core_condensed_test.dir/core_condensed_test.cpp.o.d"
  "core_condensed_test"
  "core_condensed_test.pdb"
  "core_condensed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_condensed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
