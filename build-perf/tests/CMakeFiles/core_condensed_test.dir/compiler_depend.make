# Empty compiler generated dependencies file for core_condensed_test.
# This may be replaced when dependencies are built.
