# Empty dependencies file for core_plan_diff_test.
# This may be replaced when dependencies are built.
