file(REMOVE_RECURSE
  "CMakeFiles/analysis_diagnostic_test.dir/analysis_diagnostic_test.cpp.o"
  "CMakeFiles/analysis_diagnostic_test.dir/analysis_diagnostic_test.cpp.o.d"
  "analysis_diagnostic_test"
  "analysis_diagnostic_test.pdb"
  "analysis_diagnostic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_diagnostic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
