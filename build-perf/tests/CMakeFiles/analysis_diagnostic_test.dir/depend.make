# Empty dependencies file for analysis_diagnostic_test.
# This may be replaced when dependencies are built.
