file(REMOVE_RECURSE
  "CMakeFiles/models_catalog_test.dir/models_catalog_test.cpp.o"
  "CMakeFiles/models_catalog_test.dir/models_catalog_test.cpp.o.d"
  "models_catalog_test"
  "models_catalog_test.pdb"
  "models_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
