# Empty dependencies file for models_catalog_test.
# This may be replaced when dependencies are built.
