# Empty compiler generated dependencies file for core_dp_kernel_test.
# This may be replaced when dependencies are built.
