file(REMOVE_RECURSE
  "CMakeFiles/core_dp_kernel_test.dir/core_dp_kernel_test.cpp.o"
  "CMakeFiles/core_dp_kernel_test.dir/core_dp_kernel_test.cpp.o.d"
  "core_dp_kernel_test"
  "core_dp_kernel_test.pdb"
  "core_dp_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dp_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
