file(REMOVE_RECURSE
  "CMakeFiles/analysis_verifier_test.dir/analysis_verifier_test.cpp.o"
  "CMakeFiles/analysis_verifier_test.dir/analysis_verifier_test.cpp.o.d"
  "analysis_verifier_test"
  "analysis_verifier_test.pdb"
  "analysis_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
