# Empty compiler generated dependencies file for analysis_verifier_test.
# This may be replaced when dependencies are built.
