file(REMOVE_RECURSE
  "CMakeFiles/core_dp_test.dir/core_dp_test.cpp.o"
  "CMakeFiles/core_dp_test.dir/core_dp_test.cpp.o.d"
  "core_dp_test"
  "core_dp_test.pdb"
  "core_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
