file(REMOVE_RECURSE
  "CMakeFiles/exec_conv_chain_test.dir/exec_conv_chain_test.cpp.o"
  "CMakeFiles/exec_conv_chain_test.dir/exec_conv_chain_test.cpp.o.d"
  "exec_conv_chain_test"
  "exec_conv_chain_test.pdb"
  "exec_conv_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_conv_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
