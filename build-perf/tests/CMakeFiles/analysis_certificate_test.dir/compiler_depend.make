# Empty compiler generated dependencies file for analysis_certificate_test.
# This may be replaced when dependencies are built.
