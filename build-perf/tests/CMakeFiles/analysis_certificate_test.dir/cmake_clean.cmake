file(REMOVE_RECURSE
  "CMakeFiles/analysis_certificate_test.dir/analysis_certificate_test.cpp.o"
  "CMakeFiles/analysis_certificate_test.dir/analysis_certificate_test.cpp.o.d"
  "analysis_certificate_test"
  "analysis_certificate_test.pdb"
  "analysis_certificate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_certificate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
