# Empty dependencies file for models_io_test.
# This may be replaced when dependencies are built.
