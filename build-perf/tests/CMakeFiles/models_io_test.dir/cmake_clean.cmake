file(REMOVE_RECURSE
  "CMakeFiles/models_io_test.dir/models_io_test.cpp.o"
  "CMakeFiles/models_io_test.dir/models_io_test.cpp.o.d"
  "models_io_test"
  "models_io_test.pdb"
  "models_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
