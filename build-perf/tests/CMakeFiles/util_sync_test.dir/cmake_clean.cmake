file(REMOVE_RECURSE
  "CMakeFiles/util_sync_test.dir/util_sync_test.cpp.o"
  "CMakeFiles/util_sync_test.dir/util_sync_test.cpp.o.d"
  "util_sync_test"
  "util_sync_test.pdb"
  "util_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
