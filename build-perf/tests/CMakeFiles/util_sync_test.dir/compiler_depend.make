# Empty compiler generated dependencies file for util_sync_test.
# This may be replaced when dependencies are built.
