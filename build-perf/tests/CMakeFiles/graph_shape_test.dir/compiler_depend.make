# Empty compiler generated dependencies file for graph_shape_test.
# This may be replaced when dependencies are built.
