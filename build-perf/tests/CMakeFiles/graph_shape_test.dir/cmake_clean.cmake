file(REMOVE_RECURSE
  "CMakeFiles/graph_shape_test.dir/graph_shape_test.cpp.o"
  "CMakeFiles/graph_shape_test.dir/graph_shape_test.cpp.o.d"
  "graph_shape_test"
  "graph_shape_test.pdb"
  "graph_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
