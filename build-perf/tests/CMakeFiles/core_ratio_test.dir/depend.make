# Empty dependencies file for core_ratio_test.
# This may be replaced when dependencies are built.
