file(REMOVE_RECURSE
  "CMakeFiles/core_ratio_test.dir/core_ratio_test.cpp.o"
  "CMakeFiles/core_ratio_test.dir/core_ratio_test.cpp.o.d"
  "core_ratio_test"
  "core_ratio_test.pdb"
  "core_ratio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
