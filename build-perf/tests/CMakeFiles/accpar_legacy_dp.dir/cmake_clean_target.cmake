file(REMOVE_RECURSE
  "libaccpar_legacy_dp.a"
)
