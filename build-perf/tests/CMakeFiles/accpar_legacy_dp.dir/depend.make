# Empty dependencies file for accpar_legacy_dp.
# This may be replaced when dependencies are built.
