file(REMOVE_RECURSE
  "CMakeFiles/accpar_legacy_dp.dir/support/legacy_dp.cpp.o"
  "CMakeFiles/accpar_legacy_dp.dir/support/legacy_dp.cpp.o.d"
  "libaccpar_legacy_dp.a"
  "libaccpar_legacy_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accpar_legacy_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
