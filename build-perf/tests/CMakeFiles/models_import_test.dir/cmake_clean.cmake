file(REMOVE_RECURSE
  "CMakeFiles/models_import_test.dir/models_import_test.cpp.o"
  "CMakeFiles/models_import_test.dir/models_import_test.cpp.o.d"
  "models_import_test"
  "models_import_test.pdb"
  "models_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
