file(REMOVE_RECURSE
  "CMakeFiles/search_annealing_test.dir/search_annealing_test.cpp.o"
  "CMakeFiles/search_annealing_test.dir/search_annealing_test.cpp.o.d"
  "search_annealing_test"
  "search_annealing_test.pdb"
  "search_annealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
