# Empty compiler generated dependencies file for search_annealing_test.
# This may be replaced when dependencies are built.
