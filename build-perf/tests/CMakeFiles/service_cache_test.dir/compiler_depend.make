# Empty compiler generated dependencies file for service_cache_test.
# This may be replaced when dependencies are built.
