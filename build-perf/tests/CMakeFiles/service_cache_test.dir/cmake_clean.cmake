file(REMOVE_RECURSE
  "CMakeFiles/service_cache_test.dir/service_cache_test.cpp.o"
  "CMakeFiles/service_cache_test.dir/service_cache_test.cpp.o.d"
  "service_cache_test"
  "service_cache_test.pdb"
  "service_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
