file(REMOVE_RECURSE
  "CMakeFiles/core_completeness_test.dir/core_completeness_test.cpp.o"
  "CMakeFiles/core_completeness_test.dir/core_completeness_test.cpp.o.d"
  "core_completeness_test"
  "core_completeness_test.pdb"
  "core_completeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
