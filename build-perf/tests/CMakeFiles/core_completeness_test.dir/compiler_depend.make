# Empty compiler generated dependencies file for core_completeness_test.
# This may be replaced when dependencies are built.
