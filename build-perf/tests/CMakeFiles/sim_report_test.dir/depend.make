# Empty dependencies file for sim_report_test.
# This may be replaced when dependencies are built.
