file(REMOVE_RECURSE
  "CMakeFiles/sim_report_test.dir/sim_report_test.cpp.o"
  "CMakeFiles/sim_report_test.dir/sim_report_test.cpp.o.d"
  "sim_report_test"
  "sim_report_test.pdb"
  "sim_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
