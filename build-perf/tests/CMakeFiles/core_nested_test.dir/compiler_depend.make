# Empty compiler generated dependencies file for core_nested_test.
# This may be replaced when dependencies are built.
