file(REMOVE_RECURSE
  "CMakeFiles/core_nested_test.dir/core_nested_test.cpp.o"
  "CMakeFiles/core_nested_test.dir/core_nested_test.cpp.o.d"
  "core_nested_test"
  "core_nested_test.pdb"
  "core_nested_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
