# Empty compiler generated dependencies file for core_sp_decomposition_test.
# This may be replaced when dependencies are built.
