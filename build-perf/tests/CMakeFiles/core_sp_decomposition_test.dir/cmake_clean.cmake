file(REMOVE_RECURSE
  "CMakeFiles/core_sp_decomposition_test.dir/core_sp_decomposition_test.cpp.o"
  "CMakeFiles/core_sp_decomposition_test.dir/core_sp_decomposition_test.cpp.o.d"
  "core_sp_decomposition_test"
  "core_sp_decomposition_test.pdb"
  "core_sp_decomposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sp_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
