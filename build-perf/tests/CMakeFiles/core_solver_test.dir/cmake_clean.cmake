file(REMOVE_RECURSE
  "CMakeFiles/core_solver_test.dir/core_solver_test.cpp.o"
  "CMakeFiles/core_solver_test.dir/core_solver_test.cpp.o.d"
  "core_solver_test"
  "core_solver_test.pdb"
  "core_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
