# Empty dependencies file for core_solver_test.
# This may be replaced when dependencies are built.
