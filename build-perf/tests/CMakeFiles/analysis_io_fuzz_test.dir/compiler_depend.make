# Empty compiler generated dependencies file for analysis_io_fuzz_test.
# This may be replaced when dependencies are built.
