file(REMOVE_RECURSE
  "CMakeFiles/analysis_io_fuzz_test.dir/analysis_io_fuzz_test.cpp.o"
  "CMakeFiles/analysis_io_fuzz_test.dir/analysis_io_fuzz_test.cpp.o.d"
  "analysis_io_fuzz_test"
  "analysis_io_fuzz_test.pdb"
  "analysis_io_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_io_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
