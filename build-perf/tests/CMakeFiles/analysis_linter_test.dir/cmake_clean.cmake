file(REMOVE_RECURSE
  "CMakeFiles/analysis_linter_test.dir/analysis_linter_test.cpp.o"
  "CMakeFiles/analysis_linter_test.dir/analysis_linter_test.cpp.o.d"
  "analysis_linter_test"
  "analysis_linter_test.pdb"
  "analysis_linter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_linter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
