# Empty compiler generated dependencies file for core_simd_test.
# This may be replaced when dependencies are built.
