file(REMOVE_RECURSE
  "CMakeFiles/core_simd_test.dir/core_simd_test.cpp.o"
  "CMakeFiles/core_simd_test.dir/core_simd_test.cpp.o.d"
  "core_simd_test"
  "core_simd_test.pdb"
  "core_simd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
