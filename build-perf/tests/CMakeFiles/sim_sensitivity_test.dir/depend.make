# Empty dependencies file for sim_sensitivity_test.
# This may be replaced when dependencies are built.
