file(REMOVE_RECURSE
  "CMakeFiles/sim_sensitivity_test.dir/sim_sensitivity_test.cpp.o"
  "CMakeFiles/sim_sensitivity_test.dir/sim_sensitivity_test.cpp.o.d"
  "sim_sensitivity_test"
  "sim_sensitivity_test.pdb"
  "sim_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
