# Empty dependencies file for models_transformer_test.
# This may be replaced when dependencies are built.
