file(REMOVE_RECURSE
  "CMakeFiles/models_transformer_test.dir/models_transformer_test.cpp.o"
  "CMakeFiles/models_transformer_test.dir/models_transformer_test.cpp.o.d"
  "models_transformer_test"
  "models_transformer_test.pdb"
  "models_transformer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_transformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
