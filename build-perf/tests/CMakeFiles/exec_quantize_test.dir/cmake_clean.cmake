file(REMOVE_RECURSE
  "CMakeFiles/exec_quantize_test.dir/exec_quantize_test.cpp.o"
  "CMakeFiles/exec_quantize_test.dir/exec_quantize_test.cpp.o.d"
  "exec_quantize_test"
  "exec_quantize_test.pdb"
  "exec_quantize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_quantize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
