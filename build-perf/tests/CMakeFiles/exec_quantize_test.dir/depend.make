# Empty dependencies file for exec_quantize_test.
# This may be replaced when dependencies are built.
