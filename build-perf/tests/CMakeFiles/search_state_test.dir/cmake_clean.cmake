file(REMOVE_RECURSE
  "CMakeFiles/search_state_test.dir/search_state_test.cpp.o"
  "CMakeFiles/search_state_test.dir/search_state_test.cpp.o.d"
  "search_state_test"
  "search_state_test.pdb"
  "search_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
