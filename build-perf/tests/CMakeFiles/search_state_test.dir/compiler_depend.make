# Empty compiler generated dependencies file for search_state_test.
# This may be replaced when dependencies are built.
