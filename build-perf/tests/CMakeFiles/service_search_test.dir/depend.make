# Empty dependencies file for service_search_test.
# This may be replaced when dependencies are built.
