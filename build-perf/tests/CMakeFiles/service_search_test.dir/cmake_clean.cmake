file(REMOVE_RECURSE
  "CMakeFiles/service_search_test.dir/service_search_test.cpp.o"
  "CMakeFiles/service_search_test.dir/service_search_test.cpp.o.d"
  "service_search_test"
  "service_search_test.pdb"
  "service_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
