file(REMOVE_RECURSE
  "CMakeFiles/sim_level_test.dir/sim_level_test.cpp.o"
  "CMakeFiles/sim_level_test.dir/sim_level_test.cpp.o.d"
  "sim_level_test"
  "sim_level_test.pdb"
  "sim_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
