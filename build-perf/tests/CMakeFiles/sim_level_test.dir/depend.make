# Empty dependencies file for sim_level_test.
# This may be replaced when dependencies are built.
