# Empty compiler generated dependencies file for service_protocol_test.
# This may be replaced when dependencies are built.
