file(REMOVE_RECURSE
  "CMakeFiles/service_protocol_test.dir/service_protocol_test.cpp.o"
  "CMakeFiles/service_protocol_test.dir/service_protocol_test.cpp.o.d"
  "service_protocol_test"
  "service_protocol_test.pdb"
  "service_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
