# Empty dependencies file for accpar_cli.
# This may be replaced when dependencies are built.
