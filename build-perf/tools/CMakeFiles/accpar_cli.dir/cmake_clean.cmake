file(REMOVE_RECURSE
  "CMakeFiles/accpar_cli.dir/accpar_cli.cpp.o"
  "CMakeFiles/accpar_cli.dir/accpar_cli.cpp.o.d"
  "accpar"
  "accpar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accpar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
