file(REMOVE_RECURSE
  "CMakeFiles/resnet_multipath.dir/resnet_multipath.cpp.o"
  "CMakeFiles/resnet_multipath.dir/resnet_multipath.cpp.o.d"
  "resnet_multipath"
  "resnet_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
