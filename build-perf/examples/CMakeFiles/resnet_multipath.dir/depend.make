# Empty dependencies file for resnet_multipath.
# This may be replaced when dependencies are built.
