file(REMOVE_RECURSE
  "CMakeFiles/numeric_validation.dir/numeric_validation.cpp.o"
  "CMakeFiles/numeric_validation.dir/numeric_validation.cpp.o.d"
  "numeric_validation"
  "numeric_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
