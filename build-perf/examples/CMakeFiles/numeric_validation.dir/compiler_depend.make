# Empty compiler generated dependencies file for numeric_validation.
# This may be replaced when dependencies are built.
